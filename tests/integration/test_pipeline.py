"""Integration: the full §VI pipeline on the synthetic market.

snapshot -> filtered token graph -> loop detection -> strategies ->
atomic execution, end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis import profitable_loops
from repro.execution import ExecutionSimulator, plan_from_result
from repro.graph import find_arbitrage_loops, graph_summary
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
)


@pytest.fixture(scope="module")
def market():
    from repro.data import paper_market

    return paper_market()


@pytest.fixture(scope="module")
def loops3(market):
    return find_arbitrage_loops(market.graph(), 3)


class TestPipeline:
    def test_paper_scale_counts(self, market, loops3):
        summary = graph_summary(market.graph(), market.prices)
        assert summary["tokens"] == 51
        assert summary["pools"] == 208
        # paper: 123 profitable 3-loops; accept a band around it
        assert 100 <= len(loops3) <= 150

    def test_every_loop_monetizable(self, market, loops3):
        """Every detected loop has a positive MaxMax monetized profit."""
        strategy = MaxMaxStrategy()
        for loop in loops3:
            result = strategy.evaluate(loop, market.prices)
            assert result.monetized_profit > 0

    def test_dominance_chain_on_every_loop(self, market, loops3):
        """Convex >= MaxMax >= MaxPrice on all empirical loops."""
        maxmax = MaxMaxStrategy()
        maxprice = MaxPriceStrategy()
        convex = ConvexOptimizationStrategy(backend="slsqp")
        for loop in loops3:
            mm = maxmax.evaluate(loop, market.prices).monetized_profit
            mp = maxprice.evaluate(loop, market.prices).monetized_profit
            cv = convex.evaluate(loop, market.prices).monetized_profit
            assert cv >= mm - 1e-6 * max(1.0, mm)
            assert mm >= mp - 1e-9 * max(1.0, mm)

    def test_maxprice_suboptimal_somewhere(self, market, loops3):
        """Fig. 6's message: MaxPrice leaves money on the table on at
        least some loops."""
        maxmax = MaxMaxStrategy()
        maxprice = MaxPriceStrategy()
        strictly_below = 0
        for loop in loops3:
            mm = maxmax.evaluate(loop, market.prices).monetized_profit
            mp = maxprice.evaluate(loop, market.prices).monetized_profit
            if mp < mm * (1.0 - 1e-9):
                strictly_below += 1
        assert strictly_below > 0

    def test_execute_top_loop(self, market, loops3):
        """The most profitable loop executes atomically at its
        predicted profit on a fresh market copy."""
        strategy = MaxMaxStrategy()
        best = max(
            loops3, key=lambda lp: strategy.evaluate(lp, market.prices).monetized_profit
        )
        result = strategy.evaluate(best, market.prices)
        simulator = ExecutionSimulator(registry=market.registry.copy())
        receipt = simulator.execute(plan_from_result(result, slippage_tolerance=1e-9))
        assert not receipt.reverted
        assert receipt.monetized(market.prices) == pytest.approx(
            result.monetized_profit, rel=1e-6
        )

    def test_loop_decays_after_execution(self, market, loops3):
        """Executing a loop's optimal trade removes the opportunity:
        re-evaluating on the mutated market yields ~zero profit."""
        strategy = MaxMaxStrategy()
        registry = market.registry.copy()
        # rebuild the loop against the copied registry
        from repro.graph import build_token_graph

        graph = build_token_graph(registry)
        loops = find_arbitrage_loops(graph, 3)
        loop = loops[0]
        before = strategy.evaluate(loop, market.prices)
        simulator = ExecutionSimulator(registry=registry)
        receipt = simulator.execute(plan_from_result(before, slippage_tolerance=1e-9))
        assert not receipt.reverted
        after = strategy.evaluate(loop, market.prices)
        # the paper: at the optimum, log-rate sum hits zero; any
        # remaining profit is a numerical crumb
        assert after.monetized_profit < before.monetized_profit * 1e-4 + 1e-6

    def test_sequential_harvest_shrinks_market(self, market):
        """Repeatedly harvesting the best loop monotonically (weakly)
        drains total arbitrage from the market."""
        registry = market.registry.copy()
        from repro.graph import build_token_graph

        strategy = MaxMaxStrategy()
        last_total = None
        for _round in range(3):
            graph = build_token_graph(registry)
            loops = find_arbitrage_loops(graph, 3)
            if not loops:
                break
            results = [strategy.evaluate(lp, market.prices) for lp in loops]
            total = sum(r.monetized_profit for r in results)
            if last_total is not None:
                assert total <= last_total * (1.0 + 1e-9)
            last_total = total
            best = max(results, key=lambda r: r.monetized_profit)
            simulator = ExecutionSimulator(registry=registry)
            receipt = simulator.execute(
                plan_from_result(best, slippage_tolerance=1e-9)
            )
            assert not receipt.reverted


class TestLength4Pipeline:
    def test_length4_loops_detected(self, market):
        loops4 = find_arbitrage_loops(market.graph(), 4)
        assert len(loops4) > 0
        for loop in loops4[:20]:
            assert len(loop) == 4
            assert loop.is_arbitrage()

    def test_profitable_loops_helper(self, market):
        snapshot, loops = profitable_loops(market, 3)
        assert snapshot is market
        assert len(loops) > 0
