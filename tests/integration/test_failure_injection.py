"""Failure injection: pathological markets, degenerate parameters, and
adversarial conditions across the whole stack."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry
from repro.core import (
    ArbitrageLoop,
    InsufficientLiquidityError,
    PriceMap,
    Token,
)
from repro.data import synthetic_loop, synthetic_loop_prices
from repro.execution import ExecutionSimulator, plan_from_result
from repro.graph import build_token_graph, find_arbitrage_loops
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    TraditionalStrategy,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")


class TestExtremeFees:
    @pytest.mark.parametrize("fee", [0.0, 0.5, 0.99])
    def test_strategies_survive_any_fee(self, fee):
        pools = [
            Pool(X, Y, 100.0, 300.0, fee=fee, pool_id=f"f-xy-{fee}"),
            Pool(Y, Z, 300.0, 200.0, fee=fee, pool_id=f"f-yz-{fee}"),
            Pool(Z, X, 200.0, 400.0, fee=fee, pool_id=f"f-zx-{fee}"),
        ]
        loop = ArbitrageLoop([X, Y, Z], pools)
        prices = PriceMap({X: 2.0, Y: 10.0, Z: 20.0})
        mm = MaxMaxStrategy().evaluate(loop, prices)
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, prices)
        assert mm.monetized_profit >= 0.0
        assert cv.monetized_profit >= mm.monetized_profit - 1e-6
        if fee == 0.99:
            # a 99% fee annihilates any plausible mispricing
            assert mm.monetized_profit == 0.0

    def test_fee_kills_marginal_loop(self):
        """A loop profitable at fee 0 dies at high fee (crossover)."""
        def loop_with_fee(fee):
            pools = [
                Pool(X, Y, 100.0, 101.0, fee=fee, pool_id=f"m-xy-{fee}"),
                Pool(Y, Z, 100.0, 101.0, fee=fee, pool_id=f"m-yz-{fee}"),
                Pool(Z, X, 100.0, 101.0, fee=fee, pool_id=f"m-zx-{fee}"),
            ]
            return ArbitrageLoop([X, Y, Z], pools)

        assert loop_with_fee(0.0).is_arbitrage()
        assert not loop_with_fee(0.02).is_arbitrage()


class TestExtremeReserves:
    def test_tiny_reserves(self):
        pools = [
            Pool(X, Y, 1e-6, 3e-6, pool_id="t-xy"),
            Pool(Y, Z, 3e-6, 2e-6, pool_id="t-yz"),
            Pool(Z, X, 2e-6, 4e-6, pool_id="t-zx"),
        ]
        loop = ArbitrageLoop([X, Y, Z], pools)
        prices = PriceMap({X: 2.0, Y: 10.0, Z: 20.0})
        result = MaxMaxStrategy().evaluate(loop, prices)
        assert result.monetized_profit >= 0.0

    def test_huge_reserves(self):
        pools = [
            Pool(X, Y, 1e15, 3e15, pool_id="h-xy"),
            Pool(Y, Z, 3e15, 2e15, pool_id="h-yz"),
            Pool(Z, X, 2e15, 4e15, pool_id="h-zx"),
        ]
        loop = ArbitrageLoop([X, Y, Z], pools)
        prices = PriceMap({X: 2.0, Y: 10.0, Z: 20.0})
        mm = MaxMaxStrategy().evaluate(loop, prices)
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, prices)
        assert cv.monetized_profit >= mm.monetized_profit * (1 - 1e-6)

    def test_wildly_asymmetric_reserves(self):
        pools = [
            Pool(X, Y, 1e2, 1e12, pool_id="a-xy"),
            Pool(Y, Z, 1e12, 1e3, pool_id="a-yz"),
            Pool(Z, X, 1e3, 2e2, pool_id="a-zx"),
        ]
        loop = ArbitrageLoop([X, Y, Z], pools)
        prices = PriceMap({X: 1e4, Y: 1e-6, Z: 10.0})
        result = MaxMaxStrategy().evaluate(loop, prices)
        assert result.monetized_profit >= 0.0


class TestLongLoops:
    @pytest.mark.parametrize("length", [5, 10, 15])
    def test_long_loops_end_to_end(self, length):
        loop = synthetic_loop(length, seed=3)
        prices = synthetic_loop_prices(loop, seed=3)
        mm = MaxMaxStrategy().evaluate(loop, prices)
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, prices)
        assert mm.monetized_profit > 0
        assert cv.monetized_profit >= mm.monetized_profit - 1e-6 * mm.monetized_profit
        registry = PoolRegistry(loop.pools)
        receipt = ExecutionSimulator(registry=registry).execute(
            plan_from_result(mm, slippage_tolerance=1e-9)
        )
        assert not receipt.reverted

    def test_two_token_loop(self):
        """Parallel pools on one pair form the shortest loop."""
        p1 = Pool(X, Y, 100.0, 230.0, pool_id="p2-1")
        p2 = Pool(X, Y, 100.0, 200.0, pool_id="p2-2")
        loop = ArbitrageLoop([X, Y], [p1, p2])
        prices = PriceMap({X: 2.0, Y: 1.0})
        assert loop.is_arbitrage()
        mm = MaxMaxStrategy().evaluate(loop, prices)
        assert mm.monetized_profit > 0
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, prices)
        assert cv.monetized_profit >= mm.monetized_profit - 1e-9


class TestAdversarialExecution:
    def test_sandwiched_plan_reverts_cleanly(self, s5_loop, s5_prices):
        registry = PoolRegistry(s5_loop.pools)
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        plan = plan_from_result(result)  # zero tolerance
        # front-runner trades the same direction as the plan's first
        # hop, moving the price against it
        first_pool = plan.swaps[0].pool
        victim_token = plan.swaps[0].token_in
        first_pool.swap(victim_token, 100.0)
        simulator = ExecutionSimulator(registry=registry)
        receipt = simulator.execute(plan)
        assert receipt.reverted
        assert simulator.balances == {} or all(
            abs(v) < 1e-9 for v in simulator.balances.values()
        )

    def test_exact_out_of_whole_reserve_rejected(self):
        pool = Pool(X, Y, 100.0, 200.0)
        with pytest.raises(InsufficientLiquidityError):
            pool.quote_in(Y, 200.0)

    def test_empty_market_pipeline(self):
        registry = PoolRegistry()
        graph = build_token_graph(registry)
        assert find_arbitrage_loops(graph, 3) == []


class TestZeroAndExtremePrices:
    def test_zero_price_token_ignored_in_monetization(self, s5_loop):
        prices = PriceMap({X: 0.0, Y: 10.2, Z: 20.0})
        result = MaxMaxStrategy().evaluate(s5_loop, prices)
        # X rotation monetizes to zero; the best is still Y or Z
        assert result.start_token in (Y, Z)
        assert result.monetized_profit > 0

    def test_all_zero_prices(self, s5_loop):
        prices = PriceMap({X: 0.0, Y: 0.0, Z: 0.0})
        result = MaxMaxStrategy().evaluate(s5_loop, prices)
        assert result.monetized_profit == 0.0
        cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(s5_loop, prices)
        assert cv.monetized_profit == pytest.approx(0.0, abs=1e-9)

    def test_astronomical_price(self, s5_loop):
        prices = PriceMap({X: 1e12, Y: 10.2, Z: 20.0})
        result = MaxMaxStrategy().evaluate(s5_loop, prices)
        assert result.start_token == X
        trad = TraditionalStrategy(start_token=X).evaluate(s5_loop, prices)
        assert result.monetized_profit == pytest.approx(
            trad.monetized_profit, rel=1e-12
        )
