"""Integration tests for the streaming opportunity service.

The load-bearing assertion: on a quiesced stream the book is
**bit-identical** to batch detection on the final market state — for
any shard count and for both shard backends.  Everything else (drop
accounting, live simulation ingest, subscriptions, metrics shape)
rides on the same small workloads.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.replay import generate_event_stream
from repro.service import (
    OpportunityService,
    batch_detect_ranking as batch_book,
    log_source,
    make_workload,
    opportunity_sort_key,
    run_load,
    simulation_source,
)
from repro.simulation import SimulationEngine
from repro.simulation.agents import RetailTrader
from repro.strategies import MaxPriceStrategy


def book_pairs(report):
    return [(o.profit_usd, o.loop_id) for o in report.book.entries]


@pytest.fixture(scope="module")
def workload():
    return make_workload(10, 24, 10, 6, seed=11)


class TestQuiescedParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    async def test_bit_identical_to_batch_detect(self, workload, n_shards):
        market, log = workload
        service = OpportunityService(market, n_shards=n_shards)
        report = await service.run(log_source(log))
        assert book_pairs(report) == batch_book(market, log)

    async def test_parity_holds_for_other_strategies(self, workload):
        market, log = workload
        strategy = MaxPriceStrategy()
        service = OpportunityService(market, n_shards=3, strategy=strategy)
        report = await service.run(log_source(log))
        assert book_pairs(report) == batch_book(market, log, strategy=strategy)

    async def test_shard_count_never_changes_numbers(self, workload):
        market, log = workload
        reports = []
        for n_shards in (1, 4):
            service = OpportunityService(market, n_shards=n_shards)
            reports.append(await service.run(log_source(log)))
        assert book_pairs(reports[0]) == book_pairs(reports[1])
        # the work split differs, the evaluation total does not
        assert reports[0].evaluations == reports[1].evaluations

    async def test_follow_up_empty_stream_is_a_noop_quiesce(self, workload):
        market, _ = workload
        first = generate_event_stream(market, n_blocks=4, events_per_block=5, seed=1)
        service = OpportunityService(market, n_shards=2)
        await service.run(log_source(first))
        seq_between = service.book.seq
        empty = generate_event_stream(market, n_blocks=0, events_per_block=0, seed=3)
        report = await service.run(log_source(empty))
        assert service.book.seq == seq_between
        assert book_pairs(report) == batch_book(market, first)


class TestProcessBackend:
    @pytest.mark.parametrize("start_method", [None, "fork", "spawn"])
    async def test_process_shards_match_inline(self, workload, start_method):
        market, log = workload
        inline = OpportunityService(market, n_shards=2)
        expected = book_pairs(await inline.run(log_source(log)))
        service = OpportunityService(
            market, n_shards=2, backend="process", start_method=start_method
        )
        report = await service.run(log_source(log))
        assert book_pairs(report) == expected
        assert report.backend == "process"

    async def test_process_service_is_single_shot(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2, backend="process")
        await service.run(log_source(log))
        with pytest.raises(RuntimeError, match="single-shot"):
            await service.run(log_source(log))


def _market_segments():
    import os

    from repro.market.shm import SEGMENT_PREFIX

    try:
        return {n for n in os.listdir("/dev/shm") if SEGMENT_PREFIX in n}
    except FileNotFoundError:  # non-Linux: nothing to leak-check
        return set()


class TestSharedMemory:
    """The zero-copy model: one segment, per-shard views, no pickled
    market state — and bit-identical books regardless."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    async def test_shared_inline_matches_batch_detect(self, workload, n_shards):
        market, log = workload
        service = OpportunityService(market, n_shards=n_shards, shared=True)
        try:
            report = await service.run(log_source(log))
        finally:
            service.close()
        assert book_pairs(report) == batch_book(market, log)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    async def test_shared_process_matches_batch_detect(
        self, workload, start_method
    ):
        market, log = workload
        before = _market_segments()
        service = OpportunityService(
            market, n_shards=2, backend="process", shared=True,
            start_method=start_method,
        )
        try:
            report = await service.run(log_source(log))
        finally:
            service.close()
        assert book_pairs(report) == batch_book(market, log)
        # seqlock accounting reaches the report in the shared model
        counters = report.metrics["counters"]
        assert "shm_epoch_waits" in counters
        assert "shm_torn_retries" in counters
        # memory block: shards hold handles, the segment is counted once
        memory = report.memory
        assert memory["shared"] is True
        assert memory["segment_nbytes"] > 0
        assert len(memory["shard_market_bytes"]) == 2
        # and close() unlinked the segment — no /dev/shm leak
        assert _market_segments() <= before

    async def test_shared_pruning_matches_private(self, workload):
        market, log = workload
        k = 5
        exact = await OpportunityService(market, n_shards=2).run(
            log_source(log)
        )
        service = OpportunityService(
            market, n_shards=2, backend="process", shared=True, prune_top_k=k
        )
        try:
            pruned = await service.run(log_source(log))
        finally:
            service.close()
        assert [(o.profit_usd, o.loop_id) for o in pruned.book.top(k)] == [
            (o.profit_usd, o.loop_id) for o in exact.book.top(k)
        ]
        assert pruned.loops_pruned > 0

    async def test_shared_requires_batchable_strategy(self, workload):
        from repro.strategies import ConvexOptimizationStrategy

        market, _ = workload
        with pytest.raises(ValueError, match="shared"):
            OpportunityService(
                market, shared=True, strategy=ConvexOptimizationStrategy()
            )

    async def test_abnormal_worker_exit_still_unlinks_segment(self, workload):
        from repro.amm.events import SwapEvent
        from repro.core.errors import UnknownPoolError

        market, _ = workload
        pool = next(iter(market.registry))
        bogus = SwapEvent(
            pool_id="no-such-pool", token_in=pool.token0,
            token_out=pool.token1, amount_in=1.0, amount_out=0.9, block=0,
        )

        async def corrupt_source():
            yield bogus

        before = _market_segments()
        service = OpportunityService(
            market, n_shards=2, backend="process", shared=True
        )
        try:
            with pytest.raises(UnknownPoolError):
                await service.run(corrupt_source())
        finally:
            service.close()
        assert _market_segments() <= before


class TestBackpressureAndDrops:
    async def test_block_policy_is_lossless(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2, queue_size=1)
        report = await service.run(log_source(log))
        assert report.events_dropped == 0
        assert book_pairs(report) == batch_book(market, log)

    async def test_drop_policy_counts_and_stays_coherent(self, workload):
        market, log = workload

        async def stalling_source():
            # burst everything without yielding so tiny queues overflow
            for event in log:
                yield event

        service = OpportunityService(
            market, n_shards=1, queue_size=1, ingest_policy="drop"
        )
        report = await service.run(stalling_source())
        # conservation: every event was either applied or counted dropped
        assert report.events_ingested == len(log)
        assert 0 <= report.events_dropped <= report.events_ingested
        assert 0 <= report.blocks_dropped <= report.blocks_ingested
        if report.events_dropped:
            assert report.blocks_dropped > 0
            # the book still ranks deterministically over applied events
            pairs = book_pairs(report)
            assert pairs == sorted(
                pairs, key=lambda pair: opportunity_sort_key(*pair)
            )
        else:
            # nothing shed -> lossless, so full batch parity must hold
            assert book_pairs(report) == batch_book(market, log)

    async def test_report_counters_are_per_run(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=1)
        first = await service.run(log_source(log))
        empty = generate_event_stream(market, n_blocks=0, events_per_block=0, seed=5)
        second = await service.run(log_source(empty))
        assert first.events_ingested == len(log)
        assert second.events_ingested == 0
        assert second.evaluations == 0
        # latency quantiles are per-run windows too, not lifetime mixes
        first_e2e = first.metrics["latencies"]["end_to_end"]["count"]
        assert first_e2e > 0
        assert second.metrics["latencies"].get(
            "end_to_end", {"count": 0}
        )["count"] == 0
        # while the service's own registry accumulates across runs
        assert service.metrics.counters["events_ingested"] == len(log)
        assert service.metrics.latency("end_to_end").count == first_e2e


class TestFailurePaths:
    async def test_unknown_pool_event_raises_not_sheds(self, workload):
        from repro.amm.events import SwapEvent
        from repro.core.errors import UnknownPoolError

        market, log = workload
        pool = next(iter(market.registry))
        bogus = SwapEvent(
            pool_id="no-such-pool", token_in=pool.token0,
            token_out=pool.token1, amount_in=1.0, amount_out=0.9, block=0,
        )

        async def corrupt_source():
            yield bogus

        service = OpportunityService(market, n_shards=2)
        with pytest.raises(UnknownPoolError, match="no-such-pool"):
            await service.run(corrupt_source())

    def test_child_process_error_is_reported_not_hung(self, workload):
        from repro.engine import EvaluationEngine
        from repro.service import ShardPlan, ShardWorker
        from repro.service.worker import BlockWork, ProcessShardPool
        from repro.amm.events import SwapEvent
        from repro.strategies import MaxMaxStrategy

        market, _ = workload
        universe = EvaluationEngine().loop_universe(market.registry, 3)
        plan = ShardPlan(
            [p.pool_id for p in market.registry], universe.candidates, 1
        )
        worker = ShardWorker(
            0, market,
            [universe.candidates[i] for i in plan.shard_loops[0]],
            MaxMaxStrategy(),
        )
        pool = ProcessShardPool([worker], maxsize=4)
        pool.start()
        try:
            loop_pool = worker.loops[0].pools[0]
            # the worker's registry is restricted to its loops' pools,
            # so an event for a foreign pool makes process_block raise
            bad = SwapEvent(
                pool_id="not-in-this-shard", token_in=loop_pool.token0,
                token_out=loop_pool.token1, amount_in=1.0, amount_out=0.9,
                block=0,
            )
            pool.submit(0, BlockWork(
                block=0, events=(bad,), t_ingest=0.0, t_dispatch=0.0,
            ))
            kind, payload = pool.next_message(poll_s=0.2)
            assert kind == "error"
            shard, tb = payload
            assert shard == 0
            assert "UnknownPoolError" in tb
        finally:
            pool.join(timeout=2.0)


class TestLiveSimulationSource:
    async def test_service_tracks_a_running_simulation(self):
        market, _ = make_workload(8, 16, 1, 1, seed=3)
        n_blocks = 5
        sim = SimulationEngine(market, [RetailTrader(seed=9)], price_seed=9)
        service = OpportunityService(market, n_shards=2)
        report = await service.run(simulation_source(sim, n_blocks))
        assert report.blocks_ingested == n_blocks
        # oracle: batch-evaluate against the simulation's recorded log
        assert book_pairs(report) == batch_book(market, sim.event_log)

    async def test_simulation_source_requires_recording(self):
        market, _ = make_workload(8, 16, 1, 1, seed=3)
        sim = SimulationEngine(
            market, [RetailTrader(seed=9)], record_events=False
        )
        with pytest.raises(ValueError, match="record_events"):
            async for _ in simulation_source(sim, 1):
                pass


class TestSubscriptions:
    async def test_live_subscriber_sees_every_delta_when_keeping_up(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2, queue_size=8)
        sub = service.book.subscribe(maxsize=4096)
        seen = []

        async def consume():
            while True:
                delta = await sub.next_delta()
                if delta is None:
                    return
                seen.append(delta.seq)

        report, _ = await asyncio.gather(
            service.run(log_source(log)), consume()
        )
        assert not sub.gapped
        assert seen == sorted(seen)
        assert seen and seen[-1] == report.book.seq
        del report


    async def test_subscription_between_runs_sees_the_next_run(self, workload):
        market, _ = workload
        first = generate_event_stream(market, n_blocks=2, events_per_block=4, seed=6)
        second = generate_event_stream(market, n_blocks=2, events_per_block=4, seed=7)
        service = OpportunityService(market, n_shards=1)
        await service.run(log_source(first))
        sub = service.book.subscribe(maxsize=4096)  # after run 1 quiesced
        seen = []

        async def consume():
            while True:
                delta = await sub.next_delta()
                if delta is None:
                    return
                seen.append(delta.seq)

        await asyncio.gather(service.run(log_source(second)), consume())
        assert seen, "a between-runs subscriber must not be born dead"
        assert seen[-1] == service.book.seq


class TestReportShape:
    async def test_metrics_and_report_fields(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2)
        report = await service.run(log_source(log))
        data = report.to_dict()
        assert data["events_ingested"] == len(log)
        assert data["n_shards"] == 2
        assert data["events_per_s"] > 0
        assert 0.0 <= data["cache_hit_rate"] <= 1.0
        latencies = data["metrics"]["latencies"]
        for stage in ("end_to_end", "shard_eval", "dispatch_wait"):
            assert latencies[stage]["count"] > 0
            assert latencies[stage]["p99_ms"] >= latencies[stage]["p50_ms"] >= 0
        assert sum(data["loops_per_shard"]) == service.total_loops

    def test_run_load_flattens_to_csv_row(self, tmp_path, workload):
        from repro.service.loadgen import save_rows_csv

        market, log = workload
        report = run_load(market, log, n_shards=2, rate=0.0)
        row = report.to_row()
        assert row["events_per_s"] > 0
        assert row["n_shards"] == 2
        target = tmp_path / "load.csv"
        save_rows_csv([report], target)
        header, line = target.read_text().splitlines()
        assert header.startswith("n_pools,")
        assert line.split(",")[0] == str(row["n_pools"])


class TestBoundPruning:
    @pytest.mark.parametrize("n_shards", [1, 3])
    async def test_pruned_top_k_matches_unpruned(self, workload, n_shards):
        market, log = workload
        k = 5
        exact = await OpportunityService(market, n_shards=n_shards).run(
            log_source(log)
        )
        service = OpportunityService(market, n_shards=n_shards, prune_top_k=k)
        pruned = await service.run(log_source(log))
        assert [(o.profit_usd, o.loop_id) for o in pruned.book.top(k)] == [
            (o.profit_usd, o.loop_id) for o in exact.book.top(k)
        ]
        # accounting closes: every dirtied loop was re-quoted or pruned
        assert pruned.evaluations + pruned.loops_pruned == exact.evaluations
        assert pruned.loops_pruned > 0  # the bound pass actually bit
        assert exact.loops_pruned == 0

    async def test_process_backend_prunes_identically(self, workload):
        market, log = workload
        k = 5
        inline = await OpportunityService(
            market, n_shards=2, prune_top_k=k
        ).run(log_source(log))
        service = OpportunityService(
            market, n_shards=2, backend="process", prune_top_k=k
        )
        report = await service.run(log_source(log))
        assert [(o.profit_usd, o.loop_id) for o in report.book.top(k)] == [
            (o.profit_usd, o.loop_id) for o in inline.book.top(k)
        ]
        assert report.loops_pruned == inline.loops_pruned

    async def test_per_shard_evaluator_gauges_are_published(self, workload):
        market, log = workload
        service = OpportunityService(market, n_shards=2, prune_top_k=3)
        report = await service.run(log_source(log))
        gauges = report.to_dict()["metrics"]["gauges"]
        for shard in range(2):
            for stat in ("kernel_loops", "kernel_passes", "scalar_loops",
                         "pruned_loops", "bound_passes"):
                assert f"shard{shard}_{stat}" in gauges
        assert sum(
            gauges[f"shard{s}_pruned_loops"] for s in range(2)
        ) == report.loops_pruned
        assert report.to_dict()["loops_pruned"] == report.loops_pruned

    def test_prune_top_k_must_be_positive(self, workload):
        market, _ = workload
        with pytest.raises(ValueError, match="prune_top_k"):
            OpportunityService(market, prune_top_k=0)
