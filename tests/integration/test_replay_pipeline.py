"""Golden regression for the replay pipeline.

``tests/data`` holds one small seeded stream checked in as an artifact:
the starting market (``replay_market.json``), six blocks of events
(``replay_stream.jsonl``), and the exact per-block reports
(``replay_expected.json``).  The test replays the stream — both
incrementally and with full recompute — and asserts the reports match
the checked-in expectation *exactly*, field by field, float by float.

Regenerate the fixtures (only after an intentional semantic change)
with the snippet in this file's git history / README.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.data import MarketSnapshot
from repro.replay import MarketEventLog, ReplayDriver
from repro.strategies import MaxMaxStrategy, TraditionalStrategy

DATA = Path(__file__).resolve().parents[1] / "data"


@pytest.fixture(scope="module")
def golden():
    market = MarketSnapshot.load(DATA / "replay_market.json")
    log = MarketEventLog.load(DATA / "replay_stream.jsonl")
    expected = json.loads((DATA / "replay_expected.json").read_text())
    return market, log, expected


def _strategies():
    return {"maxmax": MaxMaxStrategy(), "traditional": TraditionalStrategy()}


class TestGoldenReplay:
    def test_incremental_matches_golden_exactly(self, golden):
        market, log, expected = golden
        driver = ReplayDriver(market, strategies=_strategies(), mode="incremental")
        result = driver.replay(log)
        assert [r.to_dict() for r in result.reports] == expected

    def test_full_recompute_matches_golden_numbers(self, golden):
        market, log, expected = golden
        driver = ReplayDriver(market, strategies=_strategies(), mode="full")
        result = driver.replay(log)
        got = [r.to_dict() for r in result.reports]
        for report, want in zip(got, expected):
            # evaluated_loops is the one field that differs by design:
            # full mode always evaluates the whole universe
            assert report["evaluated_loops"] == report["total_loops"]
            for key, value in want.items():
                if key != "evaluated_loops":
                    assert report[key] == value, key

    def test_incremental_does_less_work(self, golden):
        market, log, _expected = golden
        driver = ReplayDriver(market, strategies=_strategies(), mode="incremental")
        result = driver.replay(log)
        assert result.evaluations() < driver.total_loops * len(result.reports)

    def test_stream_fixture_is_block_ordered_and_typed(self, golden):
        _market, log, expected = golden
        assert log.blocks() == tuple(r["block"] for r in expected)
        assert len(log) == sum(r["n_events"] for r in expected)
        # the stream exercises the whole event family
        names = {type(e).__name__ for e in log}
        assert names == {
            "BlockEvent", "PriceTickEvent", "SwapEvent", "MintEvent", "BurnEvent",
        }
