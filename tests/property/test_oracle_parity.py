"""Three-way parity: batch kernel vs scalar twin vs the mpmath oracle.

The existing parity suites compare two float implementations with each
other — bit-identity for constant-product, ``WEIGHTED_PARITY_RTOL``
for weighted.  Neither says which one is *right*.  Here every quote is
also re-derived at 50 significant digits (:mod:`repro.market.oracle`),
turning parity into an accuracy ordering:

    |kernel - oracle|  <=  |scalar - oracle| + eps

i.e. the batched kernel is never *less* accurate than the scalar path
it mirrors (eps absorbs only double rounding of the error metric
itself).  On top of the ordering, measured absolute bounds pin both
paths to the oracle:

* constant-product loops: the closed form is algebraically exact, so
  both paths sit within ~1e-12 relative of truth;
* mixed CPMM/G3M loops: accuracy degrades to ~1e-6 in the worst corner
  — when the optimal trade is tiny relative to a G3M reserve
  (``u = gamma*t/x ~ 1e-9``), ``1 - (x/(x+eff))**r`` cancels and the
  ~2e-16 error in the base is amplified by ``1/u``.  Both paths share
  this seam bit-for-bit (they evaluate the same expression), so the
  ordering still holds with zero slack; the bound documents the shared
  distance from truth that ``WEIGHTED_PARITY_RTOL`` alone cannot see.

mpmath is optional (the package does not depend on it) and 50-digit
arithmetic is ~1000x float, so the suite importorskips and carries the
``slow`` marker.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("mpmath")

from repro.amm import Pool, PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import BatchEvaluator, MarketArrays
from repro.market.oracle import oracle_monetized, oracle_quote, rel_error
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)
from repro.strategies.traditional import rotation_quote

pytestmark = pytest.mark.slow

TOKENS = tuple(Token(s) for s in ("A", "B", "C", "D"))

reserve = st.floats(min_value=50.0, max_value=1e6)
weight = st.floats(min_value=0.1, max_value=0.9)
fee = st.floats(min_value=0.0, max_value=0.05)
price = st.floats(min_value=0.01, max_value=1e4)
length = st.integers(min_value=2, max_value=4)

#: Slack on the accuracy ordering — double rounding of the error
#: metric only; the kernel and scalar paths are lockstep, so their
#: oracle distances are identical up to how the mpf difference rounds.
ORDERING_EPS = 1e-15

#: Measured oracle distance of the all-CPMM closed form (worst
#: observed across strategies and magnitudes: ~2.4e-12 relative).
CPMM_ORACLE_RTOL = 1e-9

#: Measured oracle distance for mixed loops in the standard reserve
#: band, dominated by the G3M small-trade cancellation seam.
MIXED_ORACLE_RTOL = 1e-6


@st.composite
def cpmm_market(draw):
    """One all-constant-product loop plus prices."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        pools.append(
            registry.create(
                a, b, draw(reserve), draw(reserve),
                fee=draw(fee), pool_id=f"p{j}",
            )
        )
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


@st.composite
def mixed_market(draw):
    """One loop mixing CPMM and G3M hops (at least one weighted)."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    weighted_slots = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
    )
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        ra, rb = draw(reserve), draw(reserve)
        f = draw(fee)
        if weighted_slots[j]:
            pool = WeightedPool(
                a, b, ra, rb, draw(weight), draw(weight),
                fee=f, pool_id=f"w{j}",
            )
        else:
            pool = Pool(a, b, ra, rb, fee=f, pool_id=f"p{j}")
        registry.add(pool)
        pools.append(pool)
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


def _kind(strategy) -> str:
    return {
        TraditionalStrategy: "traditional",
        MaxPriceStrategy: "maxprice",
        MaxMaxStrategy: "maxmax",
    }[type(strategy)]


def _three_way(registry, loop, prices, strategy, profit_rtol):
    """Run kernel + scalar + oracle for one strategy and assert the
    ordering and the measured bounds."""
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    kernel = evaluator.evaluate_many(strategy, prices)[0]
    scalar = strategy.evaluate_cached(loop, prices, None)
    rotation, quote, monetized = oracle_monetized(_kind(strategy), loop, prices)

    om = float(monetized)
    ek = abs(kernel.monetized_profit - om)
    es = abs(scalar.monetized_profit - om)
    # the acceptance ordering: batching never costs accuracy
    assert ek <= es + ORDERING_EPS * (1.0 + abs(om))

    # measured bound vs truth, cancellation-aware: profit error scales
    # with the monetized *turnover* P*t (the two big numbers whose
    # difference the profit is), not just the profit itself
    t_star = float(quote.amount_in)
    start_price = float(prices[rotation.start_token])
    scale = 1.0 + abs(om) + start_price * t_star
    assert ek <= profit_rtol * scale
    assert es <= profit_rtol * scale

    # amount_in accuracy, scaled by the input magnitude itself plus
    # the start reserve (the natural unit when t* underflows); only
    # when the float path picked the oracle's rotation — a MaxMax
    # near-tie may legitimately select a different start token
    if (
        kernel.amount_in is not None
        and kernel.start_token == rotation.start_token
    ):
        token_in, _token_out, pool = next(iter(rotation.hops()))
        x0 = pool.reserve_of(token_in)
        assert abs(kernel.amount_in - t_star) <= 1e-9 * (x0 + t_star)


@settings(max_examples=25, deadline=None)
@given(market=cpmm_market())
def test_cpmm_strategies_match_oracle(market):
    registry, loop, prices = market
    for strategy in (TraditionalStrategy(), MaxPriceStrategy(), MaxMaxStrategy()):
        _three_way(registry, loop, prices, strategy, CPMM_ORACLE_RTOL)


@settings(max_examples=25, deadline=None)
@given(market=mixed_market())
def test_mixed_strategies_match_oracle(market):
    registry, loop, prices = market
    for strategy in (TraditionalStrategy(), MaxPriceStrategy(), MaxMaxStrategy()):
        _three_way(registry, loop, prices, strategy, MIXED_ORACLE_RTOL)


@settings(max_examples=20, deadline=None)
@given(market=cpmm_market())
def test_cpmm_rotation_quotes_match_oracle(market):
    """Rotation-level: every rotation's scalar quote sits within the
    closed-form oracle distance — amounts vector included."""
    _registry, loop, _prices = market
    for rotation in loop.rotations():
        ref = oracle_quote(rotation)
        got = rotation_quote(rotation)
        if ref.amount_in == 0:
            assert got.amount_in == pytest.approx(0.0, abs=1e-9)
            continue
        assert rel_error(got.amount_in, ref.amount_in) <= CPMM_ORACLE_RTOL
        for (g_in, g_out), (r_in, r_out) in zip(
            got.hop_amounts, ref.hop_amounts()
        ):
            assert rel_error(g_in, r_in) <= CPMM_ORACLE_RTOL
            assert rel_error(g_out, r_out) <= CPMM_ORACLE_RTOL
