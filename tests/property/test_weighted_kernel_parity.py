"""Hypothesis: batched weighted quotes ↔ the scalar G3M optimizer.

The weighted kernel's G3M contract is the **documented tolerance**:
across random weights, fees, reserves, and loop lengths, the batched
chain-rule solver (:func:`repro.market.weighted_quotes`) agrees with
the scalar optimizer that :mod:`repro.amm.weighted` loops actually use
(:func:`repro.optimize.chain.optimize_rotation_chain`, reached via
``rotation_quote``) within :data:`repro.market.WEIGHTED_PARITY_RTOL`
relative.

An earlier revision of this suite additionally asserted bit-for-bit
"lockstep" equality between the two paths, on the theory that both
route every fractional power through the same ``np.power`` ufunc.
That assertion flaked on random draws with ulp-level diffs: NumPy does
not pin ``pow`` rounding, and its SIMD inner loops round the packed
vector lanes and the scalar/tail path independently, so the *same*
``(base, exponent)`` pair may differ by an ulp between the kernel's
array call and the scalar optimizer's 0-d call depending on the build,
the ISA level, and the element's position in the batch.  Bit-identity
across the two paths is therefore not a property NumPy offers; the
suite now asserts only the documented contract (see the pinned
regression case at the bottom).  IEEE-pinned families are different:
CPMM and stableswap hops use ``+ - * /`` only, and their scalar↔kernel
bit-identity is asserted in ``test_stableswap_parity.py``.

Same-path determinism (replay incremental-vs-full, shared-vs-private
books) is unaffected: those suites compare one code path against
itself on identical shapes, which *is* deterministic, and they keep
their bit-identity asserts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import (
    WEIGHTED_PARITY_RTOL,
    BatchEvaluator,
    MarketArrays,
)
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)
from repro.strategies.traditional import rotation_quote

TOKENS = tuple(Token(s) for s in ("A", "B", "C", "D"))

reserve = st.floats(min_value=50.0, max_value=1e6)
weight = st.floats(min_value=0.1, max_value=0.9)
fee = st.floats(min_value=0.0, max_value=0.05)
price = st.floats(min_value=0.01, max_value=1e4)
length = st.integers(min_value=2, max_value=4)
method = st.sampled_from(["closed_form", "bisection", "golden"])


@st.composite
def weighted_market(draw):
    """A single loop of random length whose hops mix CPMM and G3M
    pools (at least one weighted), plus prices for every token."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    weighted_slots = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
    )
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        ra, rb = draw(reserve), draw(reserve)
        f = draw(fee)
        if weighted_slots[j]:
            pool = WeightedPool(
                a, b, ra, rb, draw(weight), draw(weight),
                fee=f, pool_id=f"w{j}",
            )
        else:
            pool = Pool(a, b, ra, rb, fee=f, pool_id=f"p{j}")
        registry.add(pool)
        pools.append(pool)
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


def _assert_hops_match(got_hops, ref_hops) -> None:
    """Per-hop amounts within the documented tolerance (same shape)."""
    assert len(got_hops) == len(ref_hops)
    for got_hop, ref_hop in zip(got_hops, ref_hops):
        assert got_hop == pytest.approx(
            ref_hop, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
        )


def _assert_results_match(got, ref) -> None:
    """Kernel vs scalar strategy results, documented-tolerance tier.

    ``pow`` rounding may differ by an ulp between the array and scalar
    paths (module docstring), which can also shift an iterative
    solver's bracket — and with it the iteration count — by one, so
    ``details`` is compared with slack on ``iterations`` only.
    """
    assert got.amount_in == pytest.approx(
        ref.amount_in, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
    )
    assert got.monetized_profit == pytest.approx(
        ref.monetized_profit, rel=WEIGHTED_PARITY_RTOL, abs=1e-9
    )
    _assert_hops_match(got.hop_amounts, ref.hop_amounts)
    assert set(got.details) == set(ref.details)
    for key, ref_value in ref.details.items():
        if key == "iterations":
            assert abs(got.details[key] - ref_value) <= 1
        elif isinstance(ref_value, float):
            assert got.details[key] == pytest.approx(
                ref_value, rel=WEIGHTED_PARITY_RTOL, abs=1e-9
            )
        else:
            assert got.details[key] == ref_value


@settings(max_examples=60, deadline=None)
@given(market=weighted_market(), m=method)
def test_weighted_quotes_match_scalar_optimizer(market, m):
    registry, loop, prices = market
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    assert evaluator.fallback_positions == []
    assert evaluator.groups[0].weighted
    for strategy in (
        TraditionalStrategy(method=m),
        MaxPriceStrategy(method=m),
        MaxMaxStrategy(method=m),
    ):
        got = evaluator.evaluate_many(strategy, prices)[0]
        ref = strategy.evaluate_cached(loop, prices, None)
        _assert_results_match(got, ref)
    assert evaluator.stats.scalar_loops == 0


@settings(max_examples=40, deadline=None)
@given(market=weighted_market())
def test_every_rotation_quote_matches_chain_optimizer(market):
    """Rotation-level parity, independent of any strategy: the kernel's
    per-rotation quote equals ``rotation_quote`` (which routes weighted
    rotations to the chain-rule bisection whatever the method)."""
    from repro.market.weighted_kernel import weighted_quotes
    from repro.market import compile_loops

    registry, loop, _prices = market
    arrays = MarketArrays.from_registry(registry)
    groups, fallback = compile_loops([loop], arrays)
    assert fallback == []
    for offset in range(len(loop)):
        quotes = weighted_quotes(arrays, groups[0], offset)
        ref = rotation_quote(loop.rotations()[offset])
        got = quotes.quote(0)
        assert got.amount_in == pytest.approx(
            ref.amount_in, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
        )
        assert got.profit == pytest.approx(
            ref.profit, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
        )
        _assert_hops_match(got.hop_amounts, ref.hop_amounts)
        assert abs(got.iterations - ref.iterations) <= 1


# ----------------------------------------------------------------------
# pinned regression: the flake's failure shape, deterministically
# ----------------------------------------------------------------------


def test_weighted_parity_regression_boundary_market():
    """Pinned boundary-value market for the former lockstep flake.

    The hypothesis suite used to assert bit-identical kernel-vs-scalar
    results and flaked with ulp diffs on draws like this one — the
    strategies' boundary values (reserve 50 / 1e6, weight 0.1 / 0.9,
    fee 0.05) maximize ``pow`` rounding sensitivity.  This case pins
    the market and asserts the *documented* contract over every
    strategy, method, and rotation, so the widened assertion itself is
    covered by a test that cannot rot with hypothesis's RNG.
    """
    a, b, c = TOKENS[:3]
    registry = PoolRegistry()
    pools = [
        WeightedPool(a, b, 50.0, 1e6, 0.1, 0.9, fee=0.05, pool_id="w0"),
        WeightedPool(b, c, 1e6, 50.0, 0.9, 0.1, fee=0.0, pool_id="w1"),
        Pool(c, a, 1e6, 1e6, fee=0.05, pool_id="p2"),
    ]
    for pool in pools:
        registry.add(pool)
    loop = ArbitrageLoop([a, b, c], pools)
    prices = PriceMap({a: 1e4, b: 0.01, c: 1.0})
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    assert evaluator.fallback_positions == []
    for m in ("closed_form", "bisection", "golden"):
        for strategy in (
            TraditionalStrategy(method=m),
            MaxPriceStrategy(method=m),
            MaxMaxStrategy(method=m),
        ):
            got = evaluator.evaluate_many(strategy, prices)[0]
            ref = strategy.evaluate_cached(loop, prices, None)
            _assert_results_match(got, ref)
    assert evaluator.stats.scalar_loops == 0
