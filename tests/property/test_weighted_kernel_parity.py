"""Hypothesis: batched weighted quotes ↔ the scalar G3M optimizer.

The weighted kernel's contract has two tiers:

* **documented tolerance** — across random weights, fees, reserves,
  and loop lengths, the batched chain-rule solver
  (:func:`repro.market.weighted_quotes`) agrees with the scalar
  optimizer that :mod:`repro.amm.weighted` loops actually use
  (:func:`repro.optimize.chain.optimize_rotation_chain`, reached via
  ``rotation_quote``) within :data:`repro.market.WEIGHTED_PARITY_RTOL`
  relative.  This is the *portable* contract: ``pow`` is not
  IEEE-pinned, so the bound is what survives a platform whose array
  and scalar pow paths differ by an ulp.

* **per-platform lockstep** — on any one platform both paths route
  every fractional power through the same ``np.power`` ufunc
  (:func:`repro.amm.weighted.pinned_pow`) and iterate in lockstep, so
  they agree *exactly*.  The suite asserts this stronger property too
  (it is what the replay incremental-vs-full and service parity tests
  rely on); if a future platform ever breaks it, this is the test
  that should fail first — loosen it to the documented tolerance only
  together with those parity suites.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import (
    WEIGHTED_PARITY_RTOL,
    BatchEvaluator,
    MarketArrays,
)
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)
from repro.strategies.traditional import rotation_quote

TOKENS = tuple(Token(s) for s in ("A", "B", "C", "D"))

reserve = st.floats(min_value=50.0, max_value=1e6)
weight = st.floats(min_value=0.1, max_value=0.9)
fee = st.floats(min_value=0.0, max_value=0.05)
price = st.floats(min_value=0.01, max_value=1e4)
length = st.integers(min_value=2, max_value=4)
method = st.sampled_from(["closed_form", "bisection", "golden"])


@st.composite
def weighted_market(draw):
    """A single loop of random length whose hops mix CPMM and G3M
    pools (at least one weighted), plus prices for every token."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    weighted_slots = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
    )
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        ra, rb = draw(reserve), draw(reserve)
        f = draw(fee)
        if weighted_slots[j]:
            pool = WeightedPool(
                a, b, ra, rb, draw(weight), draw(weight),
                fee=f, pool_id=f"w{j}",
            )
        else:
            pool = Pool(a, b, ra, rb, fee=f, pool_id=f"p{j}")
        registry.add(pool)
        pools.append(pool)
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


@settings(max_examples=60, deadline=None)
@given(market=weighted_market(), m=method)
def test_weighted_quotes_match_scalar_optimizer(market, m):
    registry, loop, prices = market
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    assert evaluator.fallback_positions == []
    assert evaluator.groups[0].weighted
    for strategy in (
        TraditionalStrategy(method=m),
        MaxPriceStrategy(method=m),
        MaxMaxStrategy(method=m),
    ):
        got = evaluator.evaluate_many(strategy, prices)[0]
        ref = strategy.evaluate_cached(loop, prices, None)
        # portable contract: documented relative tolerance
        assert got.amount_in == pytest.approx(
            ref.amount_in, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
        )
        assert got.monetized_profit == pytest.approx(
            ref.monetized_profit, rel=WEIGHTED_PARITY_RTOL, abs=1e-9
        )
        # per-platform lockstep: same ufunc, same iteration sequence,
        # same bits (see module docstring before weakening this)
        assert got.amount_in == ref.amount_in
        assert got.hop_amounts == ref.hop_amounts
        assert got.monetized_profit == ref.monetized_profit
        assert got.details == ref.details
    assert evaluator.stats.scalar_loops == 0


@settings(max_examples=40, deadline=None)
@given(market=weighted_market())
def test_every_rotation_quote_matches_chain_optimizer(market):
    """Rotation-level parity, independent of any strategy: the kernel's
    per-rotation quote equals ``rotation_quote`` (which routes weighted
    rotations to the chain-rule bisection whatever the method)."""
    from repro.market.weighted_kernel import weighted_quotes
    from repro.market import compile_loops

    registry, loop, _prices = market
    arrays = MarketArrays.from_registry(registry)
    groups, fallback = compile_loops([loop], arrays)
    assert fallback == []
    for offset in range(len(loop)):
        quotes = weighted_quotes(arrays, groups[0], offset)
        ref = rotation_quote(loop.rotations()[offset])
        got = quotes.quote(0)
        assert got.amount_in == pytest.approx(
            ref.amount_in, rel=WEIGHTED_PARITY_RTOL, abs=1e-12
        )
        assert got == ref  # lockstep tier (iterations included)
