"""Hypothesis: columnar market state ↔ pool objects, bit-exact.

The contract of :mod:`repro.market` is not "close" — it is *the same
floats*.  Two round-trip properties pin it:

* **state parity** — build :class:`~repro.market.MarketArrays` from a
  random registry, drive a random valid Swap/Mint/Burn stream through
  the pool objects, replay the recorded events into the arrays (in
  random chunk sizes, so both the sequential and the vectorized
  distinct-pool scatter paths get exercised), and compare every
  reserve with ``==``;
* **quote parity** — after the stream, every strategy quote produced
  by the cross-loop batch kernel equals the scalar object-path quote
  bit for bit (profit vector, optimal input, hop amounts, monetized
  profit).

A registry rebuilt via ``to_registry`` must also reproduce the arrays'
state exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import PoolRegistry
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import BatchEvaluator, MarketArrays
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

X, Y, Z, W = Token("X"), Token("Y"), Token("Z"), Token("W")
TOKENS = (X, Y, Z, W)

reserve = st.floats(min_value=100.0, max_value=1e6)
price = st.floats(min_value=0.01, max_value=1e4)

#: Per event: (pool pick, kind pick, magnitude in (0, 1), side pick)
event_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1e-4, max_value=0.25),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)

chunk_seed = st.integers(min_value=1, max_value=7)


def build_registry(reserves) -> PoolRegistry:
    registry = PoolRegistry()
    pairs = [(X, Y), (Y, Z), (Z, X), (X, W), (Y, W)]
    for (a, b), (ra, rb) in zip(pairs, reserves):
        registry.create(a, b, ra, rb, pool_id=f"{a.symbol}{b.symbol}".lower())
    return registry


def loops_over(registry: PoolRegistry) -> list[ArbitrageLoop]:
    return [
        ArbitrageLoop([X, Y, Z], [registry["xy"], registry["yz"], registry["zx"]]),
        ArbitrageLoop([Z, Y, X], [registry["yz"], registry["xy"], registry["zx"]]),
        ArbitrageLoop([X, Y, W], [registry["xy"], registry["yw"], registry["xw"]]),
    ]


def drive_objects(registry: PoolRegistry, specs) -> list:
    """Apply a random-but-valid stream to the pool objects; return the
    recorded events (the ground truth the arrays replay)."""
    pools = sorted(registry, key=lambda p: p.pool_id)
    events = []
    for pick, kind, magnitude, side in specs:
        pool = pools[pick % len(pools)]
        before = pool.event_count
        if kind < 0.6:
            token_in = pool.token0 if side else pool.token1
            pool.swap(token_in, magnitude * pool.reserve_of(token_in))
        elif kind < 0.8:
            pool.add_liquidity(
                pool.reserve0 * magnitude, pool.reserve1 * magnitude
            )
        else:
            pool.remove_liquidity(magnitude * 0.9 + 1e-6)
        events.extend(pool.events_after(before))
    return events


def replay_into_arrays(arrays: MarketArrays, events, chunk: int) -> None:
    for start in range(0, len(events), chunk):
        arrays.apply_events(events[start : start + chunk])


@given(
    reserves=st.tuples(*([st.tuples(reserve, reserve)] * 5)),
    specs=event_specs,
    chunk=chunk_seed,
)
@settings(max_examples=60, deadline=None)
def test_event_stream_state_parity(reserves, specs, chunk):
    registry = build_registry(reserves)
    arrays = MarketArrays.from_registry(registry)
    events = drive_objects(registry, specs)
    replay_into_arrays(arrays, events, chunk)
    for pool in registry:
        assert arrays.reserves(pool.pool_id) == (pool.reserve0, pool.reserve1)
    rebuilt = arrays.to_registry()
    for pool in registry:
        clone = rebuilt[pool.pool_id]
        assert clone.reserve0 == pool.reserve0
        assert clone.reserve1 == pool.reserve1


@given(
    reserves=st.tuples(*([st.tuples(reserve, reserve)] * 5)),
    prices=st.tuples(price, price, price, price),
    specs=event_specs,
    chunk=chunk_seed,
)
@settings(max_examples=40, deadline=None)
def test_event_stream_quote_parity(reserves, prices, specs, chunk):
    registry = build_registry(reserves)
    arrays = MarketArrays.from_registry(registry)
    events = drive_objects(registry, specs)
    replay_into_arrays(arrays, events, chunk)

    price_map = PriceMap(dict(zip(TOKENS, prices)))
    loops = loops_over(registry)
    evaluator = BatchEvaluator(loops, arrays=arrays, min_batch=1)
    strategies = [
        TraditionalStrategy(),
        TraditionalStrategy(start_token=Y),
        MaxPriceStrategy(),
        MaxMaxStrategy(),
    ]
    for strategy in strategies:
        batch = evaluator.evaluate_many(strategy, price_map)
        for got, loop in zip(batch, loops):
            ref = strategy.evaluate_cached(loop, price_map, None)
            assert got.monetized_profit == ref.monetized_profit
            assert got.amount_in == ref.amount_in
            assert got.hop_amounts == ref.hop_amounts
            assert got.profit == ref.profit
            assert got.start_token == ref.start_token
            assert got.details == ref.details
