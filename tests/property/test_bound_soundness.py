"""Property: monetized profit bounds are sound, and pruning with them
never changes the top-K book.

Two halves of the same contract:

* **bound soundness** — on random loops mixing CPMM, weighted, and
  stableswap hops, for every strategy × solver method,
  :meth:`BatchEvaluator.monetized_bounds` is never below the exact
  kernel profit, and a bound of exactly ``0.0`` proves the exact
  profit is non-positive.  This is what makes every prune decision
  safe by construction.
* **pruned ≡ unpruned** — on random event streams, the service run
  with ``prune_top_k`` publishes a top-K book bit-identical to the
  exhaustive (``--no-prune``) run, and the work accounting closes:
  exact quotes + pruned loops = loops the unpruned run dirtied.

Deterministic small-case versions live in
``tests/unit/test_market_bounds.py``.
"""

from __future__ import annotations

import asyncio
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, PoolRegistry
from repro.amm.stableswap import StableSwapPool
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.data import SyntheticMarketGenerator
from repro.market import BatchEvaluator, MarketArrays, below_threshold
from repro.replay import ReplayDriver, generate_event_stream
from repro.service import OpportunityService, log_source
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

TOKENS = tuple(Token(s) for s in ("A", "B", "C", "D"))

reserve = st.floats(min_value=50.0, max_value=1e6)
weight = st.floats(min_value=0.1, max_value=0.9)
amplification = st.floats(min_value=1.0, max_value=300.0)
fee = st.floats(min_value=0.0, max_value=0.05)
price = st.floats(min_value=0.01, max_value=1e4)
length = st.integers(min_value=2, max_value=4)
method = st.sampled_from(["closed_form", "bisection", "golden"])


@st.composite
def mixed_market(draw):
    """A single loop of random length mixing CPMM, G3M, and stableswap
    hops in any combination (pure-CPMM included), plus prices for every
    token."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    slots = draw(
        st.lists(
            st.sampled_from(["cpmm", "g3m", "stableswap"]),
            min_size=n, max_size=n,
        )
    )
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        ra, rb = draw(reserve), draw(reserve)
        f = draw(fee)
        if slots[j] == "g3m":
            pool = WeightedPool(
                a, b, ra, rb, draw(weight), draw(weight),
                fee=f, pool_id=f"w{j}",
            )
        elif slots[j] == "stableswap":
            pool = StableSwapPool(
                a, b, ra, rb, amplification=draw(amplification),
                fee=f, pool_id=f"s{j}",
            )
        else:
            pool = Pool(a, b, ra, rb, fee=f, pool_id=f"p{j}")
        registry.add(pool)
        pools.append(pool)
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


@settings(max_examples=60, deadline=None)
@given(market=mixed_market(), m=method)
def test_bound_dominates_exact_profit(market, m):
    registry, loop, prices = market
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    for strategy in (
        TraditionalStrategy(method=m),
        MaxPriceStrategy(method=m),
        MaxMaxStrategy(method=m),
    ):
        bound = evaluator.monetized_bounds(strategy, prices)[0]
        if math.isnan(bound):
            # NaN refuses to prune; nothing to prove
            assert not below_threshold(
                evaluator.monetized_bounds(strategy, prices), 1e18
            )[0]
            continue
        exact = evaluator.evaluate_many(strategy, prices)[0].monetized_profit
        assert bound >= exact, (
            f"{strategy!r}: bound {bound!r} below exact profit {exact!r}"
        )
        if bound == 0.0:
            assert exact <= 0.0


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(0, 4),
    events_per_block=st.integers(0, 5),
    ticks=st.integers(0, 2),
    n_shards=st.integers(1, 3),
    k=st.integers(1, 5),
)
@settings(max_examples=10, deadline=None)
def test_pruned_service_equals_unpruned_book(
    market_seed, stream_seed, n_blocks, events_per_block, ticks, n_shards, k
):
    market = SyntheticMarketGenerator(
        n_tokens=7, n_pools=14, seed=market_seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
        price_ticks_per_block=ticks,
    )

    def run(prune_top_k):
        service = OpportunityService(
            market, n_shards=n_shards, prune_top_k=prune_top_k
        )
        return asyncio.run(service.run(log_source(log)))

    pruned = run(k)
    exact = run(None)

    got = [(o.profit_usd, o.loop_id) for o in pruned.book.top(k)]
    want = [(o.profit_usd, o.loop_id) for o in exact.book.top(k)]
    assert got == want
    # work accounting closes: every dirtied loop was either exactly
    # re-quoted or provably below the running threshold
    assert pruned.evaluations + pruned.loops_pruned == exact.evaluations
    assert exact.loops_pruned == 0
    assert pruned.events_dropped == 0 and exact.events_dropped == 0


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(0, 4),
    events_per_block=st.integers(0, 5),
)
@settings(max_examples=10, deadline=None)
def test_pruned_replay_reports_are_bit_identical(
    market_seed, stream_seed, n_blocks, events_per_block
):
    market = SyntheticMarketGenerator(
        n_tokens=6, n_pools=12, seed=market_seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
        price_ticks_per_block=1,
    )
    pruned = ReplayDriver(market, prune=True).replay(log)
    exact = ReplayDriver(market, prune=False).replay(log)
    assert len(pruned.reports) == len(exact.reports)
    for a, b in zip(exact.reports, pruned.reports):
        assert a.same_numbers(b)
