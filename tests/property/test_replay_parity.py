"""Property tests: event-log serialization is lossless and incremental
replay is bit-identical to full recompute.

These two properties are the replay subsystem's contract:

* any event stream survives a JSONL round trip unchanged (floats
  included — JSON numbers carry ``repr`` precision);
* for any generated market and stream, the incremental driver's
  per-block reports equal the full-recompute driver's *exactly* —
  not approximately.  Dirty-set tracking changes when work happens,
  never what is computed.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.amm.events import (
    BlockEvent,
    BurnEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from repro.data import SyntheticMarketGenerator
from repro.replay import MarketEventLog, ReplayDriver, generate_event_stream
from repro.strategies import MaxMaxStrategy, MaxPriceStrategy
from repro.core.types import Token

# ----------------------------------------------------------------------
# arbitrary (not necessarily applicable) events — serialization only
# ----------------------------------------------------------------------

_symbols = st.sampled_from(["WETH", "USDC", "DAI", "TOK0", "TOK1", "X"])
_tokens = st.builds(
    Token,
    symbol=_symbols,
    decimals=st.integers(min_value=0, max_value=24),
    address=st.sampled_from(["", "0xdead", "0xbeef"]),
)
_amounts = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)
_pool_ids = st.sampled_from(["pool-a", "pool-b", "syn-0001"])

_events = st.one_of(
    st.builds(BlockEvent),
    st.builds(PriceTickEvent, token=_tokens, price=_amounts),
    st.builds(
        SwapEvent,
        pool_id=_pool_ids,
        token_in=_tokens,
        token_out=_tokens,
        amount_in=_amounts,
        amount_out=_amounts,
    ),
    st.builds(MintEvent, pool_id=_pool_ids, amount0=_amounts, amount1=_amounts),
    st.builds(
        BurnEvent,
        pool_id=_pool_ids,
        fraction=st.floats(min_value=1e-6, max_value=0.99),
        amount0=_amounts,
        amount1=_amounts,
    ),
)


@st.composite
def event_logs(draw):
    """A block-ordered log of arbitrary events."""
    events = draw(st.lists(_events, max_size=30))
    blocks = sorted(draw(st.lists(st.integers(0, 50), min_size=len(events), max_size=len(events))))
    from dataclasses import replace

    return MarketEventLog(
        replace(event, block=block) for event, block in zip(events, blocks)
    )


@given(log=event_logs())
@settings(max_examples=60, deadline=None)
def test_jsonl_round_trip_is_lossless(log):
    parsed = MarketEventLog.from_jsonl(log.to_jsonl())
    assert parsed == log
    # and idempotent: serialize-parse-serialize is a fixed point
    assert parsed.to_jsonl() == log.to_jsonl()


# ----------------------------------------------------------------------
# incremental ≡ full on generated markets + streams
# ----------------------------------------------------------------------


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(1, 5),
    events_per_block=st.integers(0, 6),
    ticks=st.integers(0, 2),
)
@settings(max_examples=12, deadline=None)
def test_incremental_replay_matches_full_recompute(
    market_seed, stream_seed, n_blocks, events_per_block, ticks
):
    market = SyntheticMarketGenerator(
        n_tokens=8, n_pools=18, seed=market_seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
        price_ticks_per_block=ticks,
    )
    strategies = {"maxmax": MaxMaxStrategy(), "maxprice": MaxPriceStrategy()}
    incremental = ReplayDriver(market, strategies=strategies, mode="incremental")
    full = ReplayDriver(market, strategies=strategies, mode="full")
    ri = incremental.replay(log)
    rf = full.replay(log)

    assert len(ri.reports) == len(rf.reports) == len(log.blocks())
    for a, b in zip(ri.reports, rf.reports):
        # bit-identical, not approximately equal
        assert a.same_numbers(b), f"divergence at block {a.block}: {a} vs {b}"
        assert a.evaluated_loops <= b.evaluated_loops

    # final market state agrees too (same events, same order)
    assert (
        incremental.market.registry.snapshot().__class__
        is full.market.registry.snapshot().__class__
    )
    for pool in incremental.market.registry:
        other = full.market.registry[pool.pool_id]
        assert pool.reserve_of(pool.token0) == other.reserve_of(other.token0)
        assert pool.reserve_of(pool.token1) == other.reserve_of(other.token1)
