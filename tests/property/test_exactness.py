"""Differential: float model vs integer kernel vs the mpmath oracle.

The integer backend's contract is *floor semantics*: every hop output
is the floor of the real-valued V2 quote over the same integer market
(base-unit reserves, ppm fee).  Flooring can therefore only ever
reduce an output, and by strictly less than one base unit — the suite
pins both directions of that inequality per hop and per loop, with the
real value computed by the 50-digit oracle so the bound is against
truth, not against another float.

The float model rides along as the third lane: at 18-decimal (WAD)
scale its distance from the same truth is ~1e-9 relative, which is the
measured content behind the README's "float for search, integers for
settlement" policy.

Degenerate-magnitude lanes cover the conversion seams PR 5's pinned
helpers left: :func:`base_units` must raise ``OverflowError`` exactly
when ``value * scale`` is non-finite, never wrap or return garbage.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("mpmath")

from mpmath import mp, mpf

from repro.amm import PoolRegistry, amount_out as float_amount_out
from repro.amm.integer import get_amount_out
from repro.core import ArbitrageLoop, Token
from repro.market import (
    FEE_PPM_DENOMINATOR,
    WAD,
    base_units,
    exact_loop_quote,
    integer_hops,
    quantize_fee,
)
from repro.market.oracle import ORACLE_DPS
from repro.strategies.traditional import rotation_quote

pytestmark = pytest.mark.slow

TOKENS = tuple(Token(s) for s in ("A", "B", "C"))

int_reserve = st.integers(min_value=10**3, max_value=10**27)
int_amount = st.integers(min_value=1, max_value=10**24)
fee_ppm = st.integers(min_value=1, max_value=FEE_PPM_DENOMINATOR)


def _real_out(amount_in: int, reserve_in: int, reserve_out: int, fee_num: int):
    """One hop's real-valued output over the *integer* market, in mpf:
    the quantity the integer kernel floors."""
    with mp.workdps(ORACLE_DPS):
        eff = mpf(amount_in) * fee_num
        return eff * reserve_out / (mpf(reserve_in) * FEE_PPM_DENOMINATOR + eff)


class TestHopFloorSemantics:
    @given(
        reserve_in=int_reserve,
        reserve_out=int_reserve,
        amount_in=int_amount,
        fee_num=fee_ppm,
    )
    @settings(max_examples=200, deadline=None)
    def test_floor_brackets_real_value(
        self, reserve_in, reserve_out, amount_in, fee_num
    ):
        """real - 1 < integer <= real: flooring only reduces, by less
        than one base unit."""
        out = get_amount_out(
            amount_in, reserve_in, reserve_out, fee_num, FEE_PPM_DENOMINATOR
        )
        real = _real_out(amount_in, reserve_in, reserve_out, fee_num)
        with mp.workdps(ORACLE_DPS):
            assert mpf(out) <= real
            assert real - mpf(out) < 1

    @given(
        reserve_in=st.integers(min_value=10**20, max_value=10**27),
        reserve_out=st.integers(min_value=10**20, max_value=10**27),
        amount_in=st.integers(min_value=10**15, max_value=10**24),
    )
    @settings(max_examples=100, deadline=None)
    def test_float_model_within_1e9_of_truth_at_wad_scale(
        self, reserve_in, reserve_out, amount_in
    ):
        """The float hop map's oracle distance at settlement scale —
        the number the precision policy quotes."""
        approx = float_amount_out(
            float(reserve_in), float(reserve_out), float(amount_in), 0.003
        )
        real = _real_out(amount_in, reserve_in, reserve_out, 997_000)
        with mp.workdps(ORACLE_DPS):
            assert abs(mpf(approx) - real) <= real * mpf("1e-9") + 1


@st.composite
def cpmm_loop(draw):
    """A triangle of CPMM pools whose fees sit *on* the ppm grid, so
    the float and integer markets price the same gamma — off-grid fees
    are quantized by the integer backend and would fold a deliberate
    ~5e-7 fee-rounding gap into the floor-semantics measurements."""
    tokens = list(TOKENS)
    registry = PoolRegistry()
    pools = []
    reserve = st.floats(min_value=50.0, max_value=1e6)
    fee = st.integers(min_value=0, max_value=50_000).map(
        lambda ppm: ppm / FEE_PPM_DENOMINATOR
    )
    for j in range(len(tokens)):
        a, b = tokens[j], tokens[(j + 1) % len(tokens)]
        pools.append(
            registry.create(
                a, b, draw(reserve), draw(reserve),
                fee=draw(fee), pool_id=f"p{j}",
            )
        )
    return ArbitrageLoop(tokens, pools)


class TestLoopFloorSemantics:
    @given(loop=cpmm_loop())
    @settings(max_examples=50, deadline=None)
    def test_exact_loop_brackets_oracle_per_hop(self, loop):
        """Execute the float-optimal input through the integer market
        and bracket every hop against the oracle run over the *same*
        integer market: each integer amount is the floor of the real
        hop map fed the integer upstream value, and never exceeds the
        all-real cascade (the hop map is monotone increasing)."""
        rotation = loop.rotations()[0]
        ref = rotation_quote(rotation)
        units = base_units(ref.amount_in, WAD)
        if units <= 0:
            detail = exact_loop_quote(rotation, ref.amount_in, WAD)
            assert detail["amount_out"] == 0
            return
        hops = integer_hops(rotation, WAD)
        with mp.workdps(ORACLE_DPS):
            current_int = units
            current_real = mpf(units)
            for pool, zero_for_one in hops:
                fee_num, fee_den = pool.fee_fraction
                assert fee_den == FEE_PPM_DENOMINATOR
                if zero_for_one:
                    x, y = pool.reserves
                else:
                    y, x = pool.reserves
                next_int = (
                    pool.quote_out(current_int, zero_for_one)
                    if current_int > 0
                    else 0
                )
                next_real = (
                    current_real * fee_num * y
                    / (mpf(x) * FEE_PPM_DENOMINATOR + current_real * fee_num)
                )
                # per-hop contract: floor of the real map at the
                # *integer* upstream value — reduces by < 1 base unit
                exact_here = _real_out(current_int, x, y, fee_num)
                assert mpf(next_int) <= exact_here
                assert exact_here - mpf(next_int) < 1
                # monotone: never overtakes the all-real cascade
                assert mpf(next_int) <= next_real
                current_int, current_real = next_int, next_real
        detail = exact_loop_quote(rotation, ref.amount_in, WAD)
        assert detail["amount_out"] == current_int
        assert detail["profit"] == current_int - units

    @given(loop=cpmm_loop())
    @settings(max_examples=30, deadline=None)
    def test_integer_profit_tracks_float_profit(self, loop):
        """At WAD scale the integer settlement profit agrees with the
        float search profit to ~1e-9 relative plus the per-hop floor
        allowance — the gap the detect --exact column exists to show."""
        rotation = loop.rotations()[0]
        ref = rotation_quote(rotation)
        detail = exact_loop_quote(rotation, ref.amount_in, WAD)
        if detail["amount_in"] == 0:
            return
        float_profit_units = ref.profit * float(WAD)
        # profit is a difference of turnover-sized numbers, so the
        # float model's ~1e-9 accuracy applies to the turnover
        turnover = abs(ref.amount_in) * float(WAD)
        allowance = 1e-9 * turnover + len(loop) + 1
        assert abs(detail["profit"] - float_profit_units) <= allowance


class TestDegenerateMagnitudes:
    def test_base_units_overflow_is_loud(self):
        with pytest.raises(OverflowError):
            base_units(1e300, WAD)
        # the same value is representable at scale 1
        assert base_units(1e300, 1) == int(1e300)

    def test_base_units_truncates_toward_zero(self):
        assert base_units(1.9999999999, 1) == 1
        assert base_units(0.0, WAD) == 0
        with pytest.raises(ValueError):
            base_units(-1.5, 1)

    @given(
        value=st.floats(
            min_value=0.0, max_value=1e308, allow_nan=False, allow_infinity=False
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_base_units_never_wraps(self, value):
        """Across the full float range the conversion either raises
        OverflowError (product non-finite) or returns the true floor —
        mirroring the pinned-pow policy of loud, not wrapped, overflow."""
        if math.isinf(value * float(WAD)):
            with pytest.raises(OverflowError):
                base_units(value, WAD)
        else:
            units = base_units(value, WAD)
            prod = value * float(WAD)
            # truncation toward zero, never rounding up, never wrapping
            assert 0 <= units <= prod
            assert prod - units < 1 or prod == float(units)

    def test_quantize_fee_degenerate_edges(self):
        assert quantize_fee(0.0) == FEE_PPM_DENOMINATOR
        # a fee so close to 1 the ppm grid would hit zero: clamped to
        # the smallest non-zero gamma rather than a divide-by-zero fee
        assert quantize_fee(0.9999999) == 1
        with pytest.raises(ValueError):
            quantize_fee(1.0)
        with pytest.raises(ValueError):
            quantize_fee(-0.1)
