"""Property tests: batched / vectorized evaluation == scalar evaluation.

The engine's whole contract is that caching, batching, and the numpy
grid fast path change *when* work happens but never *what* is
computed.  Hypothesis hammers that with random reserves, random
prices, random grids, and both pool kinds (constant-product and
weighted), asserting agreement with the scalar ``evaluate`` to 1e-9
relative tolerance (the PR's acceptance bound; in practice the
constant-product path is bit-identical).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.engine import EvaluationEngine, PoolStateCache
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")

reserve = st.floats(min_value=50.0, max_value=1e5)
price = st.floats(min_value=0.01, max_value=1e4)
weight = st.floats(min_value=0.2, max_value=0.8)
grid_values = st.lists(
    st.floats(min_value=1e-9, max_value=1e4), min_size=1, max_size=8
)
loop_params = st.tuples(reserve, reserve, reserve, reserve, reserve, reserve)
price_params = st.tuples(price, price, price)


def make_cp_loop(x0, y0, y1, z1, z2, x2):
    return ArbitrageLoop(
        [X, Y, Z],
        [
            Pool(X, Y, x0, y0, pool_id="p-xy"),
            Pool(Y, Z, y1, z1, pool_id="p-yz"),
            Pool(Z, X, z2, x2, pool_id="p-zx"),
        ],
    )


def make_weighted_loop(x0, y0, y1, z1, z2, x2, w):
    return ArbitrageLoop(
        [X, Y, Z],
        [
            Pool(X, Y, x0, y0, pool_id="w-xy"),
            WeightedPool(Y, Z, y1, z1, w, 1.0 - w, pool_id="w-yz"),
            Pool(Z, X, z2, x2, pool_id="w-zx"),
        ],
    )


def assert_close(got, ref):
    assert got.monetized_profit == pytest.approx(
        ref.monetized_profit, rel=1e-9, abs=1e-9
    )
    assert got.start_token == ref.start_token
    assert got.amount_in == pytest.approx(ref.amount_in, rel=1e-9, abs=1e-9)


def all_strategies(loop):
    strategies = {
        f"start_{token.symbol}": TraditionalStrategy(start_token=token)
        for token in loop.tokens
    }
    strategies["maxmax"] = MaxMaxStrategy()
    strategies["maxprice"] = MaxPriceStrategy()
    return strategies


@given(params=loop_params, prices=price_params, grid=grid_values)
@settings(max_examples=40, deadline=None)
def test_vectorized_grid_matches_scalar_on_cp_loops(params, prices, grid):
    loop = make_cp_loop(*params)
    base = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    results = EvaluationEngine().sweep_results(
        all_strategies(loop), loop, base, X, grid
    )
    for label, strategy in all_strategies(loop).items():
        for j, p in enumerate(grid):
            ref = strategy.evaluate(loop, base.with_price(X, float(p)))
            assert_close(results[label][j], ref)


@given(params=loop_params, prices=price_params, grid=grid_values, w=weight)
@settings(max_examples=25, deadline=None)
def test_grid_falls_back_correctly_on_weighted_loops(params, prices, grid, w):
    loop = make_weighted_loop(*params, w)
    base = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    results = EvaluationEngine().sweep_results(
        {"maxmax": MaxMaxStrategy(), "maxprice": MaxPriceStrategy()},
        loop,
        base,
        X,
        grid,
    )
    for label, strategy in (
        ("maxmax", MaxMaxStrategy()),
        ("maxprice", MaxPriceStrategy()),
    ):
        for j, p in enumerate(grid):
            ref = strategy.evaluate(loop, base.with_price(X, float(p)))
            assert_close(results[label][j], ref)


@given(params=loop_params, prices=price_params)
@settings(max_examples=40, deadline=None)
def test_cached_evaluate_many_matches_scalar(params, prices):
    loop = make_cp_loop(*params)
    loops = [loop, loop.reversed()]
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    cache = PoolStateCache()
    for strategy in (MaxMaxStrategy(), MaxPriceStrategy(), TraditionalStrategy()):
        batched = strategy.evaluate_many(loops, price_map, cache=cache)
        rerun = strategy.evaluate_many(loops, price_map, cache=cache)  # warm
        for one, two, ref_loop in zip(batched, rerun, loops):
            ref = strategy.evaluate(ref_loop, price_map)
            assert_close(one, ref)
            assert_close(two, ref)
    assert cache.hits > 0


@given(params=loop_params, prices=price_params, w=weight)
@settings(max_examples=25, deadline=None)
def test_cache_is_sound_on_weighted_loops(params, prices, w):
    loop = make_weighted_loop(*params, w)
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    cache = PoolStateCache()
    strategy = MaxMaxStrategy()
    cached = strategy.evaluate_many([loop], price_map, cache=cache)[0]
    assert_close(cached, strategy.evaluate(loop, price_map))
