"""Hypothesis: stableswap parity across every evaluation path.

Three contracts, matching the family's entry in the parity-policy
table (:mod:`repro.market.weighted_kernel` docstring):

* **scalar ↔ batched** — for random loops mixing constant-product and
  stableswap hops, the chain kernel
  (:func:`repro.market.stableswap_quotes`) agrees with the scalar
  optimizer within the documented
  :data:`repro.market.STABLESWAP_PARITY_RTOL` — and, because every
  stableswap operation is ``+ - * /`` (correctly rounded under
  IEEE-754) replayed in lockstep operation order by the batched
  D/Y solvers, the two paths also agree *bit for bit* on this
  hardware.  Unlike the weighted family's ``pow``-based lockstep
  (which was demoted to the rtol contract after ulp flakes), division
  rounding is pinned by the standard, so the bit-identity tier here
  is portable to any compliant float64 platform.

* **incremental ≡ full replay** — with stableswap events (swaps,
  mints, burns) in the stream, dirty-set tracking still changes when
  work happens, never what is computed.

* **shared ≡ private** — a service running on one shared-memory
  segment produces a book bit-identical to per-shard private copies
  when stableswap pools are in the mix.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, PoolRegistry
from repro.amm.stableswap import StableSwapPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.data import SyntheticMarketGenerator
from repro.market import (
    STABLESWAP_PARITY_RTOL,
    BatchEvaluator,
    MarketArrays,
    compile_loops,
)
from repro.market.weighted_kernel import stableswap_quotes
from repro.replay import ReplayDriver, generate_event_stream
from repro.service import OpportunityService, log_source
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)
from repro.strategies.traditional import rotation_quote

TOKENS = tuple(Token(s) for s in ("A", "B", "C", "D"))

reserve = st.floats(min_value=50.0, max_value=1e6)
amplification = st.floats(min_value=1.0, max_value=300.0)
fee = st.floats(min_value=0.0, max_value=0.05)
price = st.floats(min_value=0.01, max_value=1e4)
length = st.integers(min_value=2, max_value=4)
method = st.sampled_from(["closed_form", "bisection", "golden"])


@st.composite
def stableswap_market(draw):
    """One loop of random length mixing CPMM and stableswap hops (at
    least one stableswap), plus prices for every token."""
    n = draw(length)
    tokens = list(TOKENS[:n])
    registry = PoolRegistry()
    pools = []
    stable_slots = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).filter(any)
    )
    for j in range(n):
        a, b = tokens[j], tokens[(j + 1) % n]
        ra, rb = draw(reserve), draw(reserve)
        f = draw(fee)
        if stable_slots[j]:
            pool = StableSwapPool(
                a, b, ra, rb, amplification=draw(amplification),
                fee=f, pool_id=f"s{j}",
            )
        else:
            pool = Pool(a, b, ra, rb, fee=f, pool_id=f"p{j}")
        registry.add(pool)
        pools.append(pool)
    loop = ArbitrageLoop(tokens, pools)
    prices = PriceMap({t: draw(price) for t in tokens})
    return registry, loop, prices


# ----------------------------------------------------------------------
# scalar ↔ batched
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(market=stableswap_market(), m=method)
def test_stableswap_quotes_match_scalar_optimizer(market, m):
    registry, loop, prices = market
    evaluator = BatchEvaluator(
        [loop], arrays=MarketArrays.from_registry(registry), min_batch=1
    )
    assert evaluator.fallback_positions == []
    assert evaluator.groups[0].mixed
    for strategy in (
        TraditionalStrategy(method=m),
        MaxPriceStrategy(method=m),
        MaxMaxStrategy(method=m),
    ):
        got = evaluator.evaluate_many(strategy, prices)[0]
        ref = strategy.evaluate_cached(loop, prices, None)
        # documented contract: relative tolerance
        assert got.amount_in == pytest.approx(
            ref.amount_in, rel=STABLESWAP_PARITY_RTOL, abs=1e-12
        )
        assert got.monetized_profit == pytest.approx(
            ref.monetized_profit, rel=STABLESWAP_PARITY_RTOL, abs=1e-9
        )
        # IEEE-pinned lockstep: + - * / only, so also bit-identical
        # (see module docstring — this tier is portable, unlike pow)
        assert got.amount_in == ref.amount_in
        assert got.hop_amounts == ref.hop_amounts
        assert got.monetized_profit == ref.monetized_profit
        assert got.details == ref.details
    assert evaluator.stats.scalar_loops == 0


@settings(max_examples=40, deadline=None)
@given(market=stableswap_market())
def test_every_rotation_quote_matches_chain_optimizer(market):
    """Rotation-level parity independent of any strategy."""
    registry, loop, _prices = market
    arrays = MarketArrays.from_registry(registry)
    groups, fallback = compile_loops([loop], arrays)
    assert fallback == []
    for offset in range(len(loop)):
        quotes = stableswap_quotes(arrays, groups[0], offset)
        ref = rotation_quote(loop.rotations()[offset])
        got = quotes.quote(0)
        assert got.amount_in == pytest.approx(
            ref.amount_in, rel=STABLESWAP_PARITY_RTOL, abs=1e-12
        )
        assert got == ref  # lockstep tier (iterations included)


# ----------------------------------------------------------------------
# incremental ≡ full replay with stableswap events
# ----------------------------------------------------------------------


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(1, 5),
    events_per_block=st.integers(0, 6),
)
@settings(max_examples=10, deadline=None)
def test_incremental_replay_matches_full_with_stableswap(
    market_seed, stream_seed, n_blocks, events_per_block
):
    market = SyntheticMarketGenerator(
        n_tokens=8, n_pools=18, seed=market_seed, price_noise=0.02,
        stableswap_fraction=0.4,
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
    )
    strategies = {"maxmax": MaxMaxStrategy(), "maxprice": MaxPriceStrategy()}
    incremental = ReplayDriver(market, strategies=strategies, mode="incremental")
    full = ReplayDriver(market, strategies=strategies, mode="full")
    ri = incremental.replay(log)
    rf = full.replay(log)
    assert len(ri.reports) == len(rf.reports) == len(log.blocks())
    for a, b in zip(ri.reports, rf.reports):
        # bit-identical, not approximately equal
        assert a.same_numbers(b), f"divergence at block {a.block}: {a} vs {b}"
        assert a.evaluated_loops <= b.evaluated_loops
    for pool in incremental.market.registry:
        other = full.market.registry[pool.pool_id]
        assert pool.reserve_of(pool.token0) == other.reserve_of(other.token0)
        assert pool.reserve_of(pool.token1) == other.reserve_of(other.token1)


# ----------------------------------------------------------------------
# shared ≡ private service books with stableswap pools
# ----------------------------------------------------------------------


def _book(report):
    return [
        (o.loop_id, o.profit_usd, o.amount_in, o.block)
        for o in report.book.entries
    ]


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(0, 4),
    n_shards=st.integers(1, 3),
    backend=st.sampled_from(["inline", "process"]),
)
@settings(max_examples=6, deadline=None)
def test_shared_book_equals_private_with_stableswap(
    market_seed, stream_seed, n_blocks, n_shards, backend
):
    market = SyntheticMarketGenerator(
        n_tokens=7, n_pools=14, seed=market_seed, price_noise=0.02,
        stableswap_fraction=0.35,
    ).generate()
    log = generate_event_stream(
        market, n_blocks=n_blocks, events_per_block=4, seed=stream_seed
    )
    private = OpportunityService(market, n_shards=n_shards, backend=backend)
    try:
        expected = asyncio.run(private.run(log_source(log)))
    finally:
        private.close()
    shared = OpportunityService(
        market, n_shards=n_shards, backend=backend, shared=True
    )
    try:
        report = asyncio.run(shared.run(log_source(log)))
    finally:
        shared.close()
    assert _book(report) == _book(expected)
    assert report.events_dropped == 0
    assert report.events_ingested == len(log)
