"""Property: the shared-memory market model is invisible in the numbers.

For arbitrary generated markets, streams, shard counts, and shard
backends, a service running on one shared segment (zero-copy views,
seqlock-bracketed kernel passes) must produce a quiesced opportunity
book **bit-identical** to the private-copy model — which the service
parity suite already pins to batch detection.  A second, concurrent
property hammers the seqlock itself: under writer churn a consistent
read never observes a torn pair, and the torn-read retry path is
exercised for real.
"""

from __future__ import annotations

import asyncio
import sys
import threading

from hypothesis import given, settings, strategies as st

from repro.amm import PoolRegistry
from repro.core import Token
from repro.data import SyntheticMarketGenerator
from repro.market import SharedMarketArrays
from repro.replay import generate_event_stream
from repro.service import OpportunityService, log_source


def _book(report):
    return [
        (o.loop_id, o.profit_usd, o.amount_in, o.block)
        for o in report.book.entries
    ]


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(0, 4),
    events_per_block=st.integers(0, 5),
    ticks=st.integers(0, 2),
    n_shards=st.integers(1, 4),
    backend=st.sampled_from(["inline", "process"]),
)
@settings(max_examples=8, deadline=None)
def test_shared_book_equals_private_book(
    market_seed, stream_seed, n_blocks, events_per_block, ticks, n_shards,
    backend,
):
    market = SyntheticMarketGenerator(
        n_tokens=7, n_pools=14, seed=market_seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
        price_ticks_per_block=ticks,
    )
    private = OpportunityService(market, n_shards=n_shards, backend=backend)
    expected = asyncio.run(private.run(log_source(log)))
    shared = OpportunityService(
        market, n_shards=n_shards, backend=backend, shared=True
    )
    try:
        report = asyncio.run(shared.run(log_source(log)))
    finally:
        shared.close()

    assert _book(report) == _book(expected)
    assert report.events_dropped == 0
    assert report.events_ingested == len(log)


def test_consistent_reads_survive_writer_churn():
    """A reader spinning against a live writer thread never sees a
    torn (reserve0, reserve1) pair — every consistent read observes
    exactly one committed write, and the retry path really fires.

    The retry is guaranteed, not hoped for: the writer *holds its
    first epoch odd* (mid-write) until the reader is provably spinning
    on it, then the pair free-run for the invariant half.
    """
    X, Y = Token("X"), Token("Y")
    registry = PoolRegistry()
    registry.create(X, Y, 1.0, 2.0, pool_id="xy")
    arrays = SharedMarketArrays(registry)
    view = arrays.view()
    row = arrays.pool_index["xy"]
    stop = threading.Event()
    mid_write = threading.Event()   # writer: "epoch is odd right now"
    release = threading.Event()     # reader: "I saw it, commit away"

    def churn():
        value = 1.0
        while not stop.is_set():
            value += 1.0
            with arrays.write_block():
                arrays.reserve0[row] = value
                arrays.reserve1[row] = 2.0 * value
                if not mid_write.is_set():
                    mid_write.set()
                    release.wait(timeout=10.0)

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # force tight reader/writer interleaving
    writer = threading.Thread(target=churn)
    writer.start()
    try:
        assert mid_write.wait(timeout=10.0)
        # epoch is odd: this read must spin at least once, and the
        # spin hook is what lets the writer commit out from under it
        view._spin_hook = release.set
        r0, r1 = view.read_consistent(
            lambda: (float(view.reserve0[row]), float(view.reserve1[row]))
        )
        assert r1 == 2.0 * r0
        assert view.torn_retries > 0
        view._spin_hook = None
        for _ in range(400):
            r0, r1 = view.read_consistent(
                lambda: (float(view.reserve0[row]), float(view.reserve1[row]))
            )
            assert r1 == 2.0 * r0, f"torn read escaped the seqlock: {(r0, r1)}"
    finally:
        stop.set()
        release.set()
        writer.join(timeout=10.0)
        sys.setswitchinterval(old_interval)
        view.close()
        arrays.unlink()
