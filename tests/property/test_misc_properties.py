"""Property-based tests: serialization, registry, graph, execution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, PoolRegistry
from repro.core import PriceMap, Token
from repro.data import MarketSnapshot, SyntheticMarketGenerator
from repro.execution import ExecutionSimulator, plan_from_result
from repro.graph import build_token_graph, find_arbitrage_loops
from repro.strategies import MaxMaxStrategy

symbols = st.text(
    alphabet=st.characters(whitelist_categories=("Lu",), max_codepoint=127),
    min_size=1,
    max_size=6,
)


@st.composite
def snapshots(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    tokens = [Token(f"T{i}") for i in range(n)]
    registry = PoolRegistry()
    pool_count = draw(st.integers(min_value=1, max_value=8))
    for k in range(pool_count):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda v: v != i))
        r0 = draw(st.floats(min_value=1.0, max_value=1e8))
        r1 = draw(st.floats(min_value=1.0, max_value=1e8))
        fee = draw(st.sampled_from([0.0, 0.003, 0.01]))
        registry.create(tokens[i], tokens[j], r0, r1, fee=fee, pool_id=f"g{k}")
    prices = PriceMap(
        {t: draw(st.floats(min_value=1e-6, max_value=1e6)) for t in tokens}
    )
    return MarketSnapshot(registry=registry, prices=prices, label="prop")


@given(snapshot=snapshots())
@settings(max_examples=40, deadline=None)
def test_snapshot_json_roundtrip(snapshot):
    restored = MarketSnapshot.from_json(snapshot.to_json())
    assert restored.to_json() == snapshot.to_json()
    assert len(restored.registry) == len(snapshot.registry)
    for pool in snapshot.registry:
        twin = restored.registry[pool.pool_id]
        assert twin.reserve_of(pool.token0) == pytest.approx(
            pool.reserve_of(pool.token0), rel=1e-15
        )
        assert twin.fee == pool.fee


@given(snapshot=snapshots())
@settings(max_examples=30, deadline=None)
def test_detected_loops_are_executable_at_profit(snapshot):
    """Every loop the detector reports yields positive realized profit
    when its MaxMax plan is executed atomically."""
    graph = build_token_graph(snapshot.registry)
    loops = find_arbitrage_loops(graph, 3)
    strategy = MaxMaxStrategy()
    for loop in loops[:3]:  # cap work per example
        result = strategy.evaluate(loop, snapshot.prices)
        if result.monetized_profit <= 0:
            continue
        simulator = ExecutionSimulator(registry=snapshot.registry.copy())
        # re-bind plan pools to the copied registry via pool ids
        plan = plan_from_result(result, slippage_tolerance=1e-9)
        receipt = simulator.execute(plan)
        assert not receipt.reverted
        assert receipt.monetized(snapshot.prices) > 0


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_generator_counts_exact(seed):
    generator = SyntheticMarketGenerator(n_tokens=15, n_pools=40, seed=seed)
    snapshot = generator.generate()
    graph = snapshot.graph(apply_paper_filters=False)
    assert graph.number_of_nodes() == 15
    assert graph.number_of_edges() == 40
    # every pool passes the paper filters by construction
    assert snapshot.graph().number_of_edges() == 40


@given(
    r0=st.floats(min_value=1.0, max_value=1e9),
    r1=st.floats(min_value=1.0, max_value=1e9),
    trades=st.lists(st.floats(min_value=0.01, max_value=1e3), max_size=8),
)
@settings(max_examples=60)
def test_pool_snapshot_restore_after_any_trades(r0, r1, trades):
    pool = Pool(Token("A"), Token("B"), r0, r1, pool_id="pr")
    snap = pool.snapshot()
    for amount in trades:
        pool.swap(Token("A"), amount)
    pool.restore(snap)
    assert pool.reserve_of(Token("A")) == r0
    assert pool.reserve_of(Token("B")) == r1
