"""Property-based tests for the composition algebra and closed form."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, compose_hops
from repro.core import ArbitrageLoop, Token
from repro.optimize import maximize_by_derivative

hop_strategy = st.tuples(
    st.floats(min_value=1.0, max_value=1e9),    # x
    st.floats(min_value=1.0, max_value=1e9),    # y
    st.floats(min_value=0.0, max_value=0.05),   # fee
)
hops_strategy = st.lists(hop_strategy, min_size=1, max_size=6)


@given(hops=hops_strategy, t=st.floats(min_value=0.0, max_value=1e6))
def test_composition_equals_sequential_evaluation(hops, t):
    comp = compose_hops(hops)
    current = t
    for x, y, fee in hops:
        gamma = 1.0 - fee
        current = y * gamma * current / (x + gamma * current) if current > 0 else 0.0
    assert comp(t) == pytest.approx(current, rel=1e-9, abs=1e-12)


@given(hops=hops_strategy)
def test_rate_at_zero_is_spot_product(hops):
    comp = compose_hops(hops)
    product = 1.0
    for x, y, fee in hops:
        product *= (1.0 - fee) * y / x
    assert comp.rate_at_zero == pytest.approx(product, rel=1e-9)


@given(hops=hops_strategy)
def test_closed_form_matches_bisection(hops):
    comp = compose_hops(hops)
    exact = comp.optimal_input()
    numeric = maximize_by_derivative(comp.profit, comp.derivative)
    assert numeric.x == pytest.approx(exact, rel=1e-6, abs=1e-9)


@given(hops=hops_strategy)
def test_optimum_is_stationary_or_boundary(hops):
    comp = compose_hops(hops)
    t_star = comp.optimal_input()
    if t_star == 0.0:
        assert comp.rate_at_zero <= 1.0 + 1e-12
    else:
        assert comp.derivative(t_star) == pytest.approx(1.0, rel=1e-9)


@given(hops=hops_strategy, t=st.floats(min_value=1e-9, max_value=1e6))
def test_profit_at_optimum_dominates_any_input(hops, t):
    comp = compose_hops(hops)
    assert comp.optimal_profit() >= comp.profit(t) - 1e-7 * max(1.0, abs(comp.profit(t)))


@given(hops=hops_strategy)
@settings(max_examples=50)
def test_composition_derivative_decreasing(hops):
    comp = compose_hops(hops)
    points = [0.0, 1.0, 10.0, 100.0, 1e4]
    rates = [comp.derivative(t) for t in points]
    for earlier, later in zip(rates, rates[1:]):
        assert later <= earlier * (1.0 + 1e-12)


@given(
    reserves=st.tuples(
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=10.0, max_value=1e6),
        st.floats(min_value=10.0, max_value=1e6),
    )
)
@settings(max_examples=50)
def test_rotation_composition_consistency(reserves):
    """All rotations of a loop share the profitability verdict."""
    x0, y0, y1, z1, z2, x2 = reserves
    X, Y, Z = Token("X"), Token("Y"), Token("Z")
    loop = ArbitrageLoop(
        [X, Y, Z],
        [
            Pool(X, Y, x0, y0, pool_id="h-xy"),
            Pool(Y, Z, y1, z1, pool_id="h-yz"),
            Pool(Z, X, z2, x2, pool_id="h-zx"),
        ],
    )
    verdicts = {rot.composition().is_profitable for rot in loop.rotations()}
    assert len(verdicts) == 1
    # and the verdict matches the loop-level criterion
    assert verdicts.pop() == loop.is_arbitrage()
