"""Property-based tests of the paper's theorems on random loops.

The dominance chain (Convex >= MaxMax >= MaxPrice / every traditional)
and the zero-solution theorem are the paper's theoretical results;
here hypothesis hammers them with random pool states and prices.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")

reserve = st.floats(min_value=50.0, max_value=1e5)
price = st.floats(min_value=0.01, max_value=1e4)


def make_loop(x0, y0, y1, z1, z2, x2):
    return ArbitrageLoop(
        [X, Y, Z],
        [
            Pool(X, Y, x0, y0, pool_id="p-xy"),
            Pool(Y, Z, y1, z1, pool_id="p-yz"),
            Pool(Z, X, z2, x2, pool_id="p-zx"),
        ],
    )


loop_params = st.tuples(reserve, reserve, reserve, reserve, reserve, reserve)
price_params = st.tuples(price, price, price)


@given(params=loop_params, prices=price_params)
@settings(max_examples=60, deadline=None)
def test_maxmax_dominates_every_rotation_and_maxprice(params, prices):
    loop = make_loop(*params)
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    mm = MaxMaxStrategy().evaluate(loop, price_map).monetized_profit
    mp = MaxPriceStrategy().evaluate(loop, price_map).monetized_profit
    assert mm >= mp - 1e-9 * max(1.0, abs(mm))
    for token in loop.tokens:
        trad = TraditionalStrategy(start_token=token).evaluate(loop, price_map)
        assert mm >= trad.monetized_profit - 1e-9 * max(1.0, abs(mm))


@given(params=loop_params, prices=price_params)
@settings(max_examples=40, deadline=None)
def test_convex_dominates_maxmax(params, prices):
    loop = make_loop(*params)
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    mm = MaxMaxStrategy().evaluate(loop, price_map).monetized_profit
    cv = ConvexOptimizationStrategy(backend="slsqp").evaluate(
        loop, price_map
    ).monetized_profit
    assert cv >= mm - 1e-6 * max(1.0, abs(mm))


@given(params=loop_params, prices=price_params)
@settings(max_examples=30, deadline=None)
def test_backends_agree(params, prices):
    loop = make_loop(*params)
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    barrier = ConvexOptimizationStrategy(backend="barrier").evaluate(loop, price_map)
    slsqp = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, price_map)
    scale = max(1.0, abs(barrier.monetized_profit))
    assert barrier.monetized_profit == pytest.approx(
        slsqp.monetized_profit, rel=1e-4, abs=1e-6 * scale
    )


@given(
    x=reserve,
    y=reserve,
    z=reserve,
    prices=price_params,
)
@settings(max_examples=40, deadline=None)
def test_zero_solution_theorem(x, y, z, prices):
    """Consistent pool prices => no strategy finds profit.

    Pools are built so relative prices multiply to exactly 1 around
    the loop; with the 0.3% fee every rotation has rate < 1.
    """
    loop = ArbitrageLoop(
        [X, Y, Z],
        [
            Pool(X, Y, x, y, pool_id="c-xy"),
            Pool(Y, Z, y, z, pool_id="c-yz"),
            Pool(Z, X, z, x, pool_id="c-zx"),
        ],
    )
    assert not loop.is_arbitrage()
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    mm = MaxMaxStrategy().evaluate(loop, price_map).monetized_profit
    assert mm == 0.0
    for backend in ("barrier", "slsqp"):
        cv = ConvexOptimizationStrategy(backend=backend).evaluate(
            loop, price_map
        ).monetized_profit
        assert cv == pytest.approx(0.0, abs=1e-9)


@given(params=loop_params, prices=price_params)
@settings(max_examples=40, deadline=None)
def test_profit_vectors_nonnegative(params, prices):
    """Eq. (8) is risk-free: no strategy ever reports a negative
    per-token position."""
    loop = make_loop(*params)
    price_map = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    for strategy in (
        MaxMaxStrategy(),
        ConvexOptimizationStrategy(backend="slsqp"),
    ):
        result = strategy.evaluate(loop, price_map)
        for amount in result.profit.as_mapping().values():
            assert amount >= -1e-8 * max(1.0, abs(amount))


@given(params=loop_params, prices=price_params, scale=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=30, deadline=None)
def test_price_scale_invariance_of_plans(params, prices, scale):
    """Scaling all CEX prices scales monetized profit linearly and
    leaves the MaxMax trade plan unchanged."""
    loop = make_loop(*params)
    base = PriceMap({X: prices[0], Y: prices[1], Z: prices[2]})
    scaled = PriceMap({t: p * scale for t, p in base.items()})
    r1 = MaxMaxStrategy().evaluate(loop, base)
    r2 = MaxMaxStrategy().evaluate(loop, scaled)
    assert r2.monetized_profit == pytest.approx(
        r1.monetized_profit * scale, rel=1e-9, abs=1e-9
    )
    assert r1.start_token == r2.start_token
    if r1.amount_in:
        assert r2.amount_in == pytest.approx(r1.amount_in, rel=1e-12)
