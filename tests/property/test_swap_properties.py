"""Property-based tests for the CPMM swap math (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.amm import swap

reserves = st.floats(min_value=1e-3, max_value=1e12, allow_nan=False)
fees = st.floats(min_value=0.0, max_value=0.1)
trade_sizes = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


@given(x=reserves, y=reserves, dx=trade_sizes, fee=fees)
def test_output_bounded_by_reserve(x, y, dx, fee):
    dy = swap.amount_out(x, y, dx, fee)
    assert 0.0 <= dy < y


@given(x=reserves, y=reserves, dx=trade_sizes, fee=fees)
def test_invariant_never_decreases(x, y, dx, fee):
    dy = swap.amount_out(x, y, dx, fee)
    k_before = x * y
    k_after = (x + dx) * (y - dy)
    # ``y - dy`` cancels catastrophically for dx >> x: allow the
    # rounding bound eps * y amplified by the grown input reserve.
    slack = 1e-9 * k_before + 1e-12 * (x + dx) * y
    assert k_after >= k_before - slack


@given(x=reserves, y=reserves, fee=fees, dx1=trade_sizes, dx2=trade_sizes)
def test_monotonicity(x, y, fee, dx1, dx2):
    lo, hi = sorted((dx1, dx2))
    assert swap.amount_out(x, y, lo, fee) <= swap.amount_out(x, y, hi, fee)


@given(
    x=reserves,
    y=reserves,
    fee=fees,
    dx=st.floats(min_value=1e-6, max_value=1e6),
    frac=st.floats(min_value=0.01, max_value=0.99),
)
def test_concavity_by_midpoint(x, y, fee, dx, frac):
    """F(a*t1 + (1-a)*t2) >= a*F(t1) + (1-a)*F(t2)."""
    t1, t2 = dx, dx * 2.0
    mid = frac * t1 + (1.0 - frac) * t2
    lhs = swap.amount_out(x, y, mid, fee)
    rhs = frac * swap.amount_out(x, y, t1, fee) + (1.0 - frac) * swap.amount_out(
        x, y, t2, fee
    )
    assert lhs >= rhs * (1.0 - 1e-9)


@given(
    x=reserves,
    y=reserves,
    fee=fees,
    dy_frac=st.floats(min_value=1e-6, max_value=0.999),
)
def test_amount_in_inverts_amount_out(x, y, fee, dy_frac):
    dy = y * dy_frac
    dx = swap.amount_in(x, y, dy, fee)
    recovered = swap.amount_out(x, y, dx, fee)
    assert recovered == pytest.approx(dy, rel=1e-6)


@given(x=reserves, y=reserves, fee=fees, dx=st.floats(min_value=1e-9, max_value=1e9))
def test_splitting_a_trade_never_helps(x, y, fee, dx):
    """One trade of size dx beats two sequential trades of dx/2 each
    (each leg pays the fee on its own input)."""
    whole = swap.amount_out(x, y, dx, fee)
    half1 = swap.amount_out(x, y, dx / 2, fee)
    x2, y2 = x + dx / 2, y - half1
    half2 = swap.amount_out(x2, y2, dx / 2, fee)
    assert whole >= (half1 + half2) * (1.0 - 1e-9)


@given(x=reserves, y=reserves, fee=fees, dx=st.floats(min_value=1e-9, max_value=1e9))
def test_fee_monotone_in_output(x, y, dx, fee):
    """Higher fee, less output."""
    lower = swap.amount_out(x, y, dx, min(fee + 0.01, 0.99))
    higher = swap.amount_out(x, y, dx, fee)
    assert lower <= higher


@given(x=reserves, y=reserves, fee=fees)
def test_round_trip_loses_money(x, y, fee):
    """Swapping X->Y->X in the same pool never profits (fee + slippage)."""
    dx = x * 0.1
    dy = swap.amount_out(x, y, dx, fee)
    x2, y2 = x + dx, y - dy
    back = swap.amount_out(y2, x2, dy, fee)
    assert back <= dx * (1.0 + 1e-9)
