"""Property tests of the eq.-(8) program on random loops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool
from repro.core import ArbitrageLoop, InfeasibleProgramError, PriceMap, Token
from repro.optimize import build_loop_program, solve_slsqp

X, Y, Z = Token("X"), Token("Y"), Token("Z")

reserve = st.floats(min_value=50.0, max_value=1e5)
price = st.floats(min_value=0.01, max_value=1e3)


@st.composite
def loops_and_prices(draw):
    pools = [
        Pool(X, Y, draw(reserve), draw(reserve), pool_id="lp-xy"),
        Pool(Y, Z, draw(reserve), draw(reserve), pool_id="lp-yz"),
        Pool(Z, X, draw(reserve), draw(reserve), pool_id="lp-zx"),
    ]
    loop = ArbitrageLoop([X, Y, Z], pools)
    prices = PriceMap({X: draw(price), Y: draw(price), Z: draw(price)})
    return loop, prices


@given(data=loops_and_prices())
@settings(max_examples=50, deadline=None)
def test_interior_point_when_profitable(data):
    loop, prices = data
    lp = build_loop_program(loop, prices)
    if loop.is_arbitrage():
        v0 = lp.interior_point()
        assert lp.program.is_strictly_feasible(v0)
        # every link has strictly positive slack, so every profit
        # component (and hence the monetized value) is positive
        assert lp.monetized_profit(v0) > 0.0
    else:
        with pytest.raises(InfeasibleProgramError):
            lp.interior_point()


@given(data=loops_and_prices())
@settings(max_examples=40, deadline=None)
def test_slsqp_solution_is_feasible(data):
    loop, prices = data
    lp = build_loop_program(loop, prices)
    result = solve_slsqp(lp.program, initial_point=np.full(6, 1e-6))
    x = result.x
    # hop constraints satisfied (within solver tolerance)
    values = lp.program.inequality_values(x)
    scale = max(1.0, float(np.max(np.abs(x))))
    assert np.all(values >= -1e-6 * scale)
    # objective equals monetized profit of the decoded vector
    assert lp.program.objective_value(x) == pytest.approx(
        lp.monetized_profit(x), rel=1e-9, abs=1e-9
    )


@given(data=loops_and_prices(), scale=st.floats(min_value=0.2, max_value=5.0))
@settings(max_examples=30, deadline=None)
def test_objective_scales_linearly_with_prices(data, scale):
    """eq. (8) objective is linear in prices: scaling all CEX prices
    scales the optimum monetized value (same feasible set)."""
    loop, prices = data
    scaled = PriceMap({t: p * scale for t, p in prices.items()})
    base = build_loop_program(loop, prices)
    lifted = build_loop_program(loop, scaled)
    x0 = np.full(6, 1e-6)
    sol_base = solve_slsqp(base.program, initial_point=x0)
    sol_lifted = solve_slsqp(lifted.program, initial_point=x0)
    tol = max(1.0, abs(sol_base.objective)) * 5e-3
    assert sol_lifted.objective == pytest.approx(
        sol_base.objective * scale, abs=tol * scale
    )
