"""Property: the streaming service is sharding-invariant and equals
batch detection on any quiesced stream.

For arbitrary generated markets, streams, and shard counts the final
opportunity book must be bit-identical to evaluating every candidate
loop against the final market state — profits, ordering, and the
profit-tie canonical-id tie-break included.  This is the service-level
analogue of the replay layer's incremental ≡ full property.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings, strategies as st

from repro.data import SyntheticMarketGenerator
from repro.replay import generate_event_stream
from repro.service import OpportunityService, batch_detect_ranking, log_source


@given(
    market_seed=st.integers(0, 2**16),
    stream_seed=st.integers(0, 2**16),
    n_blocks=st.integers(0, 4),
    events_per_block=st.integers(0, 5),
    ticks=st.integers(0, 2),
    n_shards=st.integers(1, 4),
)
@settings(max_examples=10, deadline=None)
def test_quiesced_service_equals_batch_detect(
    market_seed, stream_seed, n_blocks, events_per_block, ticks, n_shards
):
    market = SyntheticMarketGenerator(
        n_tokens=7, n_pools=14, seed=market_seed, price_noise=0.02
    ).generate()
    log = generate_event_stream(
        market,
        n_blocks=n_blocks,
        events_per_block=events_per_block,
        seed=stream_seed,
        price_ticks_per_block=ticks,
    )
    service = OpportunityService(market, n_shards=n_shards)
    report = asyncio.run(service.run(log_source(log)))

    got = [(o.profit_usd, o.loop_id) for o in report.book.entries]
    assert got == batch_detect_ranking(market, log)
    # conservation of work accounting: nothing dropped under backpressure
    assert report.events_dropped == 0
    assert report.events_ingested == len(log)
