"""Unit tests for the gas-cost model."""

from __future__ import annotations

import pytest

from repro.execution import DEFAULT_GAS_MODEL, GasModel
from repro.strategies import MaxMaxStrategy


@pytest.fixture
def result(s5_loop, s5_prices):
    return MaxMaxStrategy().evaluate(s5_loop, s5_prices)


class TestGasUnits:
    def test_three_hop_loop(self):
        model = GasModel()
        units = model.gas_units(3)
        assert units == pytest.approx(30_000 + 3 * 100_000 + 90_000)

    def test_no_flash_loan(self):
        model = GasModel()
        assert model.gas_units(3, flash_loan=False) == pytest.approx(330_000)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            GasModel().gas_units(0)
        with pytest.raises(ValueError, match=">= 0"):
            GasModel(gas_price_gwei=-1.0)


class TestCost:
    def test_cost_formula(self):
        model = GasModel(
            gas_per_swap=100_000,
            base_gas=30_000,
            flash_loan_gas=90_000,
            gas_price_gwei=20.0,
            eth_price_usd=1650.0,
        )
        # 420k gas * 20 gwei * 1650 $ = 420000*20e-9*1650 = 13.86$
        assert model.cost_usd(3) == pytest.approx(13.86)

    def test_cost_scales_with_gas_price(self):
        cheap = GasModel(gas_price_gwei=10.0)
        dear = GasModel(gas_price_gwei=100.0)
        assert dear.cost_usd(3) == pytest.approx(10 * cheap.cost_usd(3))

    def test_cost_for_loop_uses_length(self, s5_loop):
        model = GasModel()
        assert model.cost_for_loop(s5_loop) == model.cost_usd(3)


class TestNetProfit:
    def test_section5_survives_default_gas(self, result):
        model = DEFAULT_GAS_MODEL
        net = model.net_profit(result)
        assert net == pytest.approx(result.monetized_profit - 13.86, abs=1e-9)
        assert model.is_profitable_after_gas(result)

    def test_high_gas_kills_it(self, result):
        model = GasModel(gas_price_gwei=400.0)
        # 420k * 400 gwei * 1650$ = 277$ > 205.6$
        assert not model.is_profitable_after_gas(result)

    def test_breakeven(self):
        model = GasModel()
        assert model.breakeven_gross_usd(3) == pytest.approx(model.cost_usd(3))
