"""Unit tests for graph construction, filters, and loop enumeration."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry
from repro.core import PriceMap, Token
from repro.graph import (
    PAPER_MIN_RESERVE,
    PAPER_MIN_TVL_USD,
    apply_filters,
    build_token_graph,
    count_cycles,
    enumerate_token_cycles,
    expand_cycle_to_loops,
    find_arbitrage_loops,
    graph_summary,
    min_reserve_filter,
    min_tvl_filter,
    paper_filters,
)

A, B, C, D = Token("A"), Token("B"), Token("C"), Token("D")


def k4_registry() -> PoolRegistry:
    """Complete graph on 4 tokens (one pool per pair, 6 pools)."""
    registry = PoolRegistry()
    reserves = {
        (A, B): (1000.0, 1010.0),
        (A, C): (1000.0, 995.0),
        (A, D): (1000.0, 1020.0),
        (B, C): (1000.0, 990.0),
        (B, D): (1000.0, 1000.0),
        (C, D): (1000.0, 1015.0),
    }
    for (t0, t1), (r0, r1) in reserves.items():
        registry.create(t0, t1, r0, r1, pool_id=f"k4-{t0.symbol}{t1.symbol}")
    return registry


@pytest.fixture
def k4_graph():
    return build_token_graph(k4_registry())


class TestFilters:
    def test_min_tvl_filter(self):
        prices = PriceMap.from_symbols({"A": 1.0, "B": 1.0})
        pool_big = Pool(A, B, 20_000.0, 20_000.0, pool_id="big")
        pool_small = Pool(A, B, 1_000.0, 1_000.0, pool_id="small")
        accept = min_tvl_filter(prices)
        assert accept(pool_big)
        assert not accept(pool_small)

    def test_tvl_filter_drops_unpriced_tokens(self):
        prices = PriceMap.from_symbols({"A": 1.0})
        pool = Pool(A, B, 1e6, 1e6, pool_id="uq")
        assert not min_tvl_filter(prices)(pool)

    def test_min_reserve_filter(self):
        accept = min_reserve_filter()
        assert accept(Pool(A, B, 101.0, 5000.0))
        assert not accept(Pool(A, B, 100.0, 5000.0))  # strict: > 100
        assert not accept(Pool(A, B, 99.0, 5000.0))

    def test_paper_constants(self):
        assert PAPER_MIN_TVL_USD == 30_000.0
        assert PAPER_MIN_RESERVE == 100.0

    def test_apply_filters_conjunction(self):
        prices = PriceMap.from_symbols({"A": 100.0, "B": 100.0})
        pools = [
            Pool(A, B, 200.0, 200.0, pool_id="ok"),        # tvl 40k, reserves ok
            Pool(A, B, 120.0, 90.0, pool_id="thin"),       # reserve < 100
            Pool(A, B, 101.0, 140.0, pool_id="low-tvl"),   # tvl 24.1k < 30k
        ]
        kept = list(apply_filters(pools, paper_filters(prices)))
        assert [p.pool_id for p in kept] == ["ok"]

    def test_apply_no_filters_keeps_all(self):
        pools = [Pool(A, B, 1.0, 1.0), Pool(B, C, 1.0, 1.0)]
        assert list(apply_filters(pools, ())) == pools


class TestBuild:
    def test_nodes_and_edges(self, k4_graph):
        assert k4_graph.number_of_nodes() == 4
        assert k4_graph.number_of_edges() == 6

    def test_pools_between(self, k4_graph):
        pools = k4_graph.pools_between(A, B)
        assert len(pools) == 1
        assert pools[0].pool_id == "k4-AB"
        assert k4_graph.pools_between(A, Token("Q")) == ()

    def test_parallel_edges(self):
        registry = PoolRegistry()
        registry.create(A, B, 1000.0, 1000.0, pool_id="p1")
        registry.create(A, B, 1000.0, 1001.0, pool_id="p2")
        graph = build_token_graph(registry)
        assert graph.number_of_edges() == 2
        assert len(graph.pools_between(A, B)) == 2

    def test_all_pools_sorted(self, k4_graph):
        ids = [p.pool_id for p in k4_graph.all_pools()]
        assert ids == sorted(ids)
        assert len(ids) == 6

    def test_graph_summary(self, k4_graph):
        prices = PriceMap.from_symbols({s: 1.0 for s in "ABCD"})
        summary = graph_summary(k4_graph, prices)
        assert summary["tokens"] == 4
        assert summary["pools"] == 6
        assert summary["connected_components"] == 1
        assert summary["total_tvl_usd"] > 0

    def test_empty_graph_summary(self):
        graph = build_token_graph(PoolRegistry())
        assert graph_summary(graph) == {
            "tokens": 0, "pools": 0, "connected_components": 0,
        }


class TestCycleEnumeration:
    def test_k4_triangle_count(self, k4_graph):
        # K4 has C(4,3) = 4 triangles.
        assert count_cycles(k4_graph, 3) == 4

    def test_k4_quad_count(self, k4_graph):
        # K4 has 3 distinct 4-cycles.
        assert count_cycles(k4_graph, 4) == 3

    def test_cycles_are_canonical_and_unique(self, k4_graph):
        cycles = list(enumerate_token_cycles(k4_graph, 3))
        assert len(set(cycles)) == len(cycles)
        for cycle in cycles:
            assert cycle[0] == min(cycle, key=lambda t: t.symbol)
            assert cycle[1].symbol < cycle[-1].symbol

    def test_length_below_three_rejected(self, k4_graph):
        with pytest.raises(ValueError, match=">= 3"):
            list(enumerate_token_cycles(k4_graph, 2))

    def test_matches_networkx(self, k4_graph):
        from repro.graph.cycles import cycles_via_networkx

        ours = {frozenset(c) for c in enumerate_token_cycles(k4_graph, 3)}
        theirs = {frozenset(c) for c in cycles_via_networkx(k4_graph, 3)}
        assert ours == theirs


class TestExpansion:
    def test_both_directions(self, k4_graph):
        cycle = next(enumerate_token_cycles(k4_graph, 3))
        loops = list(expand_cycle_to_loops(k4_graph, cycle))
        assert len(loops) == 2
        assert loops[0] == loops[1].reversed()

    def test_forward_only(self, k4_graph):
        cycle = next(enumerate_token_cycles(k4_graph, 3))
        loops = list(expand_cycle_to_loops(k4_graph, cycle, directions="forward"))
        assert len(loops) == 1

    def test_invalid_directions(self, k4_graph):
        cycle = next(enumerate_token_cycles(k4_graph, 3))
        with pytest.raises(ValueError, match="directions"):
            list(expand_cycle_to_loops(k4_graph, cycle, directions="backward"))

    def test_parallel_pools_multiply(self):
        registry = k4_registry()
        registry.create(A, B, 1000.0, 1005.0, pool_id="k4-AB2")
        graph = build_token_graph(registry)
        cycle = (A, B, C)
        loops = list(expand_cycle_to_loops(graph, cycle))
        # 2 choices on the A-B hop x 2 directions
        assert len(loops) == 4

    def test_max_parallel_cap(self):
        registry = k4_registry()
        registry.create(A, B, 1000.0, 1005.0, pool_id="k4-AB2")
        graph = build_token_graph(registry)
        loops = list(expand_cycle_to_loops(graph, (A, B, C), max_parallel=1))
        assert len(loops) == 2


class TestFindArbitrageLoops:
    def test_each_found_loop_is_profitable(self, k4_graph):
        for loop in find_arbitrage_loops(k4_graph, 3):
            assert loop.log_rate_sum() > 0
            assert loop.composition().is_profitable

    def test_at_most_one_direction_per_cycle(self, k4_graph):
        loops = find_arbitrage_loops(k4_graph, 3)
        canon = [frozenset(loop.tokens) for loop in loops]
        # With a single pool per pair, the two directions cannot both
        # be profitable, so each token set appears at most once.
        assert len(canon) == len(set(canon))

    def test_deterministic(self, k4_graph):
        first = find_arbitrage_loops(k4_graph, 3)
        second = find_arbitrage_loops(k4_graph, 3)
        assert first == second

    def test_tolerance_excludes_marginal_loops(self, k4_graph):
        all_loops = find_arbitrage_loops(k4_graph, 3, tol=0.0)
        strict = find_arbitrage_loops(k4_graph, 3, tol=1.0)
        assert len(strict) <= len(all_loops)

    def test_balanced_market_has_no_loops(self):
        """Pools exactly at parity: fees kill every round trip."""
        registry = PoolRegistry()
        for pair, pid in (((A, B), "ab"), ((B, C), "bc"), ((C, A), "ca")):
            registry.create(pair[0], pair[1], 1000.0, 1000.0, pool_id=pid)
        graph = build_token_graph(registry)
        assert find_arbitrage_loops(graph, 3) == []
