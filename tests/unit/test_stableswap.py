"""Unit tests for the stableswap family (:mod:`repro.amm.stableswap`).

Covers the invariant math (``calculate_d`` / ``calculate_y`` /
``invariant_rate``), the :class:`StableSwapPool` duck interface
(quotes, swaps, events, snapshot/restore), the batched lockstep
solvers' bit-parity with the scalar iterations, the family columns of
:class:`~repro.market.MarketArrays`, the descriptor registry, and the
JSON snapshot / synthetic-generator integration points.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.amm import FAMILY_CPMM, FAMILY_G3M, Pool, PoolRegistry
from repro.amm.events import BurnEvent, MintEvent, SwapEvent
from repro.amm.families import FAMILY_STABLESWAP, pool_family
from repro.amm.stableswap import (
    DEFAULT_AMPLIFICATION,
    DEFAULT_STABLESWAP_FEE,
    StableSwapPool,
    calculate_d,
    calculate_y,
    invariant_rate,
)
from repro.amm.weighted import WeightedPool
from repro.core import Token
from repro.core.errors import InvalidReserveError, SnapshotFormatError, UnknownTokenError
from repro.market import (
    MarketArrays,
    batched_stableswap_d,
    batched_stableswap_y,
    family_descriptor,
    needs_chain_kernel,
)

USDC, USDT, DAI = Token("USDC"), Token("USDT"), Token("DAI")


@pytest.fixture
def pool():
    return StableSwapPool(USDC, USDT, 1_000_000.0, 900_000.0, pool_id="ss")


# ----------------------------------------------------------------------
# invariant math
# ----------------------------------------------------------------------


class TestInvariantMath:
    def test_d_satisfies_invariant_equation(self):
        x, y, amp = 1_000.0, 700.0, 50.0
        d = calculate_d(x, y, amp)
        ann = 4.0 * amp
        # 4A(x+y) + D == 4A D + D^3 / (4xy)
        lhs = ann * (x + y) + d
        rhs = ann * d + d**3 / (4.0 * x * y)
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_d_is_homogeneous_degree_one(self):
        d1 = calculate_d(800.0, 1_200.0, 30.0)
        d2 = calculate_d(8_000.0, 12_000.0, 30.0)
        assert d2 == pytest.approx(10.0 * d1, rel=1e-12)

    def test_d_balanced_pool_is_constant_sum(self):
        # at perfect balance the invariant degenerates to x + y exactly
        assert calculate_d(500.0, 500.0, 80.0) == pytest.approx(1_000.0, rel=1e-12)

    def test_d_zero_reserves(self):
        assert calculate_d(0.0, 0.0, 80.0) == 0.0

    def test_high_amplification_approaches_constant_sum(self):
        x, y = 1_000.0, 400.0
        d_low = calculate_d(x, y, 1.0)
        d_high = calculate_d(x, y, 1e6)
        assert abs(d_high - (x + y)) < abs(d_low - (x + y))
        assert d_high == pytest.approx(x + y, rel=1e-4)

    def test_y_inverts_d(self):
        x, y, amp = 1_500.0, 900.0, 60.0
        d = calculate_d(x, y, amp)
        assert calculate_y(x, d, amp) == pytest.approx(y, rel=1e-10)

    def test_invariant_rate_matches_finite_difference(self):
        x, y, amp = 2_000.0, 1_500.0, 40.0
        d = calculate_d(x, y, amp)
        h = 1e-4
        dy = calculate_y(x + h, d, amp) - calculate_y(x - h, d, amp)
        assert invariant_rate(x, y, d, amp) == pytest.approx(
            -dy / (2.0 * h), rel=1e-6
        )

    def test_rate_near_one_when_balanced(self):
        x = y = 10_000.0
        d = calculate_d(x, y, 100.0)
        assert invariant_rate(x, y, d, 100.0) == pytest.approx(1.0, rel=1e-9)


# ----------------------------------------------------------------------
# pool behaviour
# ----------------------------------------------------------------------


class TestStableSwapPool:
    def test_token_order_normalized(self):
        pool = StableSwapPool(USDT, DAI, 10.0, 20.0, pool_id="n")
        assert pool.token0 == DAI  # DAI < USDT
        assert pool.reserve_of(DAI) == 20.0
        assert pool.reserve_of(USDT) == 10.0

    def test_validation(self):
        with pytest.raises(InvalidReserveError, match="distinct"):
            StableSwapPool(USDC, USDC, 1.0, 1.0)
        with pytest.raises(InvalidReserveError, match="amplification"):
            StableSwapPool(USDC, USDT, 1.0, 1.0, amplification=0.5)
        with pytest.raises(InvalidReserveError, match="amplification"):
            StableSwapPool(USDC, USDT, 1.0, 1.0, amplification=float("nan"))

    def test_family_markers(self, pool):
        assert pool.family == FAMILY_STABLESWAP
        assert pool.is_constant_product is False
        assert pool_family(pool) == FAMILY_STABLESWAP
        assert pool.fee == DEFAULT_STABLESWAP_FEE
        assert pool.amplification == DEFAULT_AMPLIFICATION

    def test_quote_zero_is_exactly_zero(self, pool):
        assert pool.quote_out(USDC, 0.0) == 0.0

    def test_quote_rejects_bad_input(self, pool):
        with pytest.raises(ValueError):
            pool.quote_out(USDC, -1.0)
        with pytest.raises(ValueError):
            pool.quote_out(USDC, float("inf"))
        with pytest.raises(UnknownTokenError):
            pool.quote_out(DAI, 1.0)

    def test_quote_near_parity_for_pegged_sizes(self, pool):
        # an amplified pool near balance trades close to 1:1 minus fee
        out = pool.quote_out(USDC, 1_000.0)
        assert out == pytest.approx(1_000.0 * (1.0 - pool.fee), rel=5e-3)

    def test_quote_monotone_and_concave(self, pool):
        sizes = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0]
        outs = [pool.quote_out(USDC, s) for s in sizes]
        assert all(b > a for a, b in zip(outs, outs[1:]))
        # concavity: average output rate decreases with size
        rates = [o / s for o, s in zip(outs, sizes)]
        assert all(b <= a + 1e-15 for a, b in zip(rates, rates[1:]))

    def test_spot_price_is_marginal_rate_at_zero(self, pool):
        assert pool.spot_price(USDC) == pool.marginal_rate(USDC, 0.0)

    def test_marginal_rate_matches_quote_derivative(self, pool):
        t, h = 5_000.0, 0.5
        numeric = (pool.quote_out(USDC, t + h) - pool.quote_out(USDC, t - h)) / (
            2.0 * h
        )
        assert pool.marginal_rate(USDC, t) == pytest.approx(numeric, rel=1e-6)

    def test_swap_mutates_and_logs(self, pool):
        d_before = pool.invariant()
        out = pool.swap(USDT, 10_000.0)
        assert pool.reserve_of(USDT) == 900_000.0 + 10_000.0
        assert pool.reserve_of(USDC) == 1_000_000.0 - out
        event = pool.last_event
        assert isinstance(event, SwapEvent)
        assert event.token_in == USDT and event.amount_out == out
        # the fee accretes to the pool: the invariant never shrinks
        assert pool.invariant() >= d_before * (1.0 - 1e-12)

    def test_feeless_swap_preserves_invariant(self):
        pool = StableSwapPool(USDC, USDT, 50_000.0, 70_000.0, fee=0.0, pool_id="f0")
        d_before = pool.invariant()
        pool.swap(USDC, 2_500.0)
        assert pool.invariant() == pytest.approx(d_before, rel=1e-10)

    def test_liquidity_events(self, pool):
        pool.add_liquidity(10_000.0, 9_000.0)  # pool ratio is 10:9
        assert isinstance(pool.last_event, MintEvent)
        out0, out1 = pool.remove_liquidity(0.25)
        assert isinstance(pool.last_event, BurnEvent)
        assert out0 == pytest.approx((1_000_000.0 + 10_000.0) * 0.25)
        assert out1 == pytest.approx((900_000.0 + 9_000.0) * 0.25)
        with pytest.raises(InvalidReserveError, match="ratio"):
            pool.add_liquidity(1_000.0, 1_000.0)  # off the 10:9 ratio

    def test_snapshot_restore(self, pool):
        snap = pool.snapshot()
        pool.swap(USDC, 123.0)
        pool.restore(snap)
        assert pool.reserve0 == 1_000_000.0 and pool.reserve1 == 900_000.0
        other = StableSwapPool(USDC, USDT, 1.0, 1.0, pool_id="other")
        with pytest.raises(ValueError, match="other"):
            other.restore(snap)

    def test_copy_is_independent(self, pool):
        clone = pool.copy()
        clone.swap(USDC, 50.0)
        assert pool.reserve0 == 1_000_000.0
        assert clone.pool_id == pool.pool_id
        assert clone.amplification == pool.amplification


# ----------------------------------------------------------------------
# batched solver bit-parity
# ----------------------------------------------------------------------


class TestBatchedSolverParity:
    def test_d_bit_identical_to_scalar(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(10.0, 1e7, 300)
        y = rng.uniform(10.0, 1e7, 300)
        amp = rng.uniform(1.0, 500.0, 300)
        batched = batched_stableswap_d(x, y, amp)
        scalar = np.array(
            [calculate_d(float(a), float(b), float(c)) for a, b, c in zip(x, y, amp)]
        )
        assert np.array_equal(batched, scalar)  # bits, not approx

    def test_y_bit_identical_to_scalar(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(10.0, 1e6, 300)
        y = rng.uniform(10.0, 1e6, 300)
        amp = rng.uniform(1.0, 300.0, 300)
        d = batched_stableswap_d(x, y, amp)
        x_new = x * rng.uniform(1.0, 1.2, 300)
        batched = batched_stableswap_y(x_new, d, amp)
        scalar = np.array(
            [
                calculate_y(float(a), float(b), float(c))
                for a, b, c in zip(x_new, d, amp)
            ]
        )
        assert np.array_equal(batched, scalar)

    def test_empty_batch(self):
        empty = np.array([])
        assert len(batched_stableswap_d(empty, empty, empty)) == 0


# ----------------------------------------------------------------------
# market arrays & the family registry
# ----------------------------------------------------------------------


class TestMarketIntegration:
    @pytest.fixture
    def registry(self):
        registry = PoolRegistry()
        registry.create(USDC, USDT, 1_000.0, 2_000.0, pool_id="cp")
        registry.add(
            WeightedPool(USDC, DAI, 3_000.0, 1_500.0, 0.8, 0.2, pool_id="w")
        )
        registry.add(
            StableSwapPool(
                USDT, DAI, 5_000.0, 4_000.0, amplification=120.0, pool_id="ss"
            )
        )
        return registry

    def test_family_and_amp_columns(self, registry):
        arrays = MarketArrays(registry)
        i_cp = arrays.pool_index["cp"]
        i_w = arrays.pool_index["w"]
        i_ss = arrays.pool_index["ss"]
        assert arrays.family[i_cp] == FAMILY_CPMM
        assert arrays.family[i_w] == FAMILY_G3M
        assert arrays.family[i_ss] == FAMILY_STABLESWAP
        assert arrays.amp[i_ss] == 120.0
        assert arrays.amp[i_cp] == 0.0 and arrays.amp[i_w] == 0.0
        # non-G3M rows carry neutral weights (the bit-exact no-op)
        assert arrays.weight0[i_ss] == 1.0 and arrays.weight1[i_ss] == 1.0
        assert "stableswap" in repr(arrays)

    def test_to_registry_round_trip(self, registry):
        arrays = MarketArrays(registry)
        rebuilt = arrays.to_registry()
        ss = rebuilt["ss"]
        assert isinstance(ss, StableSwapPool)
        assert ss.amplification == 120.0
        assert ss.reserve_of(DAI) == 4_000.0
        assert isinstance(rebuilt["cp"], Pool)
        assert isinstance(rebuilt["w"], WeightedPool)

    def test_swap_apply_matches_object_path(self, registry):
        arrays = MarketArrays(registry)
        pool = registry["ss"]
        out = pool.swap(DAI, 250.0)
        arrays.apply_events(pool.events)
        i = arrays.pool_index["ss"]
        assert arrays.reserve0[i] == pool.reserve0  # bit-identical mirror
        assert arrays.reserve1[i] == pool.reserve1
        assert out > 0

    def test_descriptor_registry(self):
        cpmm = family_descriptor(FAMILY_CPMM)
        ss = family_descriptor(FAMILY_STABLESWAP)
        assert cpmm.closed_form and cpmm.integer_exact
        assert not ss.closed_form and not ss.integer_exact
        assert ss.chain_lanes is not None and ss.bound_factor is not None
        assert family_descriptor(np.int8(FAMILY_G3M)).name == "g3m"
        with pytest.raises(KeyError, match="known"):
            family_descriptor(77)
        assert not needs_chain_kernel([FAMILY_CPMM])
        assert needs_chain_kernel([FAMILY_CPMM, FAMILY_STABLESWAP])


# ----------------------------------------------------------------------
# snapshot & synthetic integration
# ----------------------------------------------------------------------


class TestSerialization:
    def test_snapshot_json_round_trip(self):
        from repro.core import PriceMap
        from repro.data.snapshot import MarketSnapshot

        registry = PoolRegistry()
        registry.add(
            StableSwapPool(
                USDC, USDT, 750.0, 800.0, amplification=42.0, fee=0.001,
                pool_id="ss",
            )
        )
        snap = MarketSnapshot(
            registry=registry, prices=PriceMap({USDC: 1.0, USDT: 1.0})
        )
        back = MarketSnapshot.from_json(snap.to_json())
        pool = back.registry["ss"]
        assert isinstance(pool, StableSwapPool)
        assert pool.amplification == 42.0
        assert pool.fee == 0.001
        assert back.to_json() == snap.to_json()

    def test_unknown_pool_type_rejected(self):
        from repro.data.snapshot import MarketSnapshot

        data = {
            "version": 1,
            "tokens": [{"symbol": "USDC"}, {"symbol": "USDT"}],
            "prices": {},
            "pools": [
                {
                    "pool_id": "x",
                    "token0": "USDC",
                    "token1": "USDT",
                    "reserve0": 1.0,
                    "reserve1": 1.0,
                    "fee": 0.0,
                    "type": "concentrated",
                }
            ],
        }
        with pytest.raises(SnapshotFormatError, match="concentrated"):
            MarketSnapshot.from_dict(data)

    def test_generator_mix_knob(self):
        from repro.data.synthetic import SyntheticMarketGenerator

        mixed = SyntheticMarketGenerator(
            n_tokens=10, n_pools=30, seed=5, stableswap_fraction=0.4
        ).generate()
        families = {pool_family(p) for p in mixed.registry}
        assert FAMILY_STABLESWAP in families and FAMILY_CPMM in families
        assert mixed.metadata["stableswap_fraction"] == 0.4
        # fraction 0 must not perturb the RNG stream of existing seeds
        plain = SyntheticMarketGenerator(n_tokens=10, n_pools=30, seed=5)
        assert plain.generate().to_json() == SyntheticMarketGenerator(
            n_tokens=10, n_pools=30, seed=5, stableswap_fraction=0.0
        ).generate().to_json()
        assert "stableswap_fraction" not in plain.generate().metadata
        with pytest.raises(ValueError, match="stableswap_fraction"):
            SyntheticMarketGenerator(stableswap_fraction=1.5)

    def test_stableswap_pools_pass_paper_filters(self):
        from repro.data.synthetic import SyntheticMarketGenerator
        from repro.graph.filters import PAPER_MIN_RESERVE, PAPER_MIN_TVL_USD

        snap = SyntheticMarketGenerator(
            n_tokens=10, n_pools=30, seed=5, stableswap_fraction=0.4
        ).generate()
        for pool in snap.registry:
            if pool_family(pool) != FAMILY_STABLESWAP:
                continue
            assert min(pool.reserve0, pool.reserve1) >= PAPER_MIN_RESERVE
            assert pool.tvl(snap.prices) >= PAPER_MIN_TVL_USD


def test_extreme_imbalance_still_converges():
    # deep off-peg pools (1000:1) must still quote without divergence
    pool = StableSwapPool(USDC, USDT, 1_000_000.0, 1_000.0, pool_id="depeg")
    out = pool.quote_out(USDC, 100.0)
    assert 0.0 < out < 100.0
    assert math.isfinite(pool.spot_price(USDC))
