"""Unit tests for span tracing: nesting, ring buffer, no-op path,
cross-process shipping."""

from __future__ import annotations

import pytest

from repro.telemetry import trace
from repro.telemetry.trace import Span, Tracer


@pytest.fixture
def tracer():
    t = Tracer(capacity=16)
    t.enable()
    return t


class TestSpanRecording:
    def test_span_records_name_attrs_and_duration(self, tracer):
        with tracer.span("work", loops=3) as sp:
            sp.set(quoted=2)
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.attrs == {"loops": 3, "quoted": 2}
        assert span.dur_ns >= 0
        assert span.parent_id is None

    def test_nesting_links_parent_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        inner, sibling, outer = tracer.spans()  # recorded by end time
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert inner.span_id != sibling.span_id

    def test_time_containment(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert outer.start_ns <= inner.start_ns
        assert inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns

    def test_retroactive_record(self, tracer):
        tracer.record("queue_wait", start_ns=100, dur_ns=50, shard=2)
        (span,) = tracer.spans()
        assert (span.start_ns, span.dur_ns) == (100, 50)
        assert span.attrs == {"shard": 2}

    def test_record_clamps_negative_duration(self, tracer):
        tracer.record("w", start_ns=100, dur_ns=-5)
        assert tracer.spans()[0].dur_ns == 0


class TestRingBuffer:
    def test_eviction_keeps_most_recent(self):
        t = Tracer(capacity=4)
        t.enable()
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        assert [s.name for s in t.spans()] == ["s6", "s7", "s8", "s9"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabledPath:
    def test_disabled_returns_the_shared_noop(self):
        t = Tracer()
        assert t.span("a", k=1) is t.span("b")  # no allocation at all
        assert t.span("a") is trace.NOOP

    def test_noop_supports_the_span_protocol(self):
        with trace.NOOP as sp:
            sp.set(anything=1)  # silently dropped

    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("a"):
            pass
        t.record("b", 0, 1)
        assert len(t) == 0

    def test_module_level_disabled_by_default(self):
        # instrumentation is permanent in the hot path; the default
        # must be the free path
        assert not trace.is_enabled()
        assert trace.span("x") is trace.NOOP


class TestShipping:
    def test_drain_empties_and_round_trips(self, tracer):
        with tracer.span("a", shard=1):
            pass
        shipped = tracer.drain()
        assert len(tracer) == 0
        assert shipped[0]["name"] == "a"
        assert Span.from_dict(shipped[0]).attrs == {"shard": 1}

    def test_ingest_reassigns_lane_and_works_disabled(self, tracer):
        child = Tracer(tid=0)
        child.enable()
        with child.span("shard.block"):
            pass
        parent = Tracer()  # disabled: spans were already paid for
        assert parent.ingest(child.drain(), tid=3) == 1
        (span,) = parent.spans()
        assert span.tid == 3
        assert span.name == "shard.block"

    def test_cross_process_merge_orders_by_start_time(self):
        # parent at tid 0, two "children" shipped in arrival order;
        # the exporter view must interleave by monotonic start stamp
        from repro.telemetry.export import chrome_trace_events

        parent = Tracer()
        parent.ingest(
            [
                {"name": "b", "start_ns": 2000, "dur_ns": 10, "span_id": 1,
                 "parent_id": None, "pid": 42, "tid": 0},
            ]
        )
        parent.ingest(
            [
                {"name": "c", "start_ns": 3000, "dur_ns": 10, "span_id": 1,
                 "parent_id": None, "pid": 43, "tid": 0},
                {"name": "a", "start_ns": 1000, "dur_ns": 10, "span_id": 2,
                 "parent_id": None, "pid": 43, "tid": 0},
            ],
            tid=2,
        )
        events = chrome_trace_events(parent.spans())
        assert [e["name"] for e in events] == ["a", "b", "c"]
        assert [e["tid"] for e in events] == [2, 0, 2]
