"""Unit tests for the columnar market layer (:mod:`repro.market`).

Parity assertions here are ``==``, never ``approx``: the batch kernel
and the array event application are contractually *bit-identical* to
the scalar object path (the hypothesis suite in
``tests/property/test_market_parity.py`` hammers the same contract
with random markets and streams).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amm import FAMILY_CPMM, FAMILY_G3M, Pool, PoolRegistry
from repro.amm.events import BlockEvent, BurnEvent, MintEvent, PriceTickEvent, SwapEvent
from repro.amm.weighted import WeightedPool
from repro.core import (
    ArbitrageLoop,
    MissingPriceError,
    PriceMap,
    StrategyError,
    Token,
)
from repro.core.errors import UnknownPoolError
from repro.market import (
    BatchEvaluator,
    MarketArrays,
    batch_kind,
    batch_quotes,
    compile_loops,
)
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

X, Y, Z, W = Token("X"), Token("Y"), Token("Z"), Token("W")


@pytest.fixture
def registry():
    registry = PoolRegistry()
    registry.create(X, Y, 1_000.0, 2_000.0, pool_id="xy")
    registry.create(Y, Z, 3_000.0, 1_500.0, pool_id="yz")
    registry.create(Z, X, 900.0, 1_800.0, pool_id="zx")
    registry.create(X, W, 5_000.0, 5_000.0, pool_id="xw")
    return registry


@pytest.fixture
def loop(registry):
    return ArbitrageLoop(
        [X, Y, Z], [registry["xy"], registry["yz"], registry["zx"]]
    )


@pytest.fixture
def prices():
    return PriceMap({X: 10.0, Y: 5.0, Z: 20.0, W: 1.0})


class TestMarketArrays:
    def test_from_registry_copies_state(self, registry):
        arrays = MarketArrays.from_registry(registry)
        assert len(arrays) == 4
        assert arrays.reserves("xy") == (1_000.0, 2_000.0)
        assert set(arrays.tokens) == {X, Y, Z, W}
        assert (arrays.family == FAMILY_CPMM).all()

    def test_duplicate_pool_ids_rejected(self):
        pools = [
            Pool(X, Y, 1.0, 1.0, pool_id="dup"),
            Pool(Y, Z, 1.0, 1.0, pool_id="dup"),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            MarketArrays(pools)

    def test_round_trip_to_registry(self, registry):
        arrays = MarketArrays.from_registry(registry)
        rebuilt = arrays.to_registry()
        assert len(rebuilt) == len(registry)
        for pool in registry:
            clone = rebuilt[pool.pool_id]
            assert clone.tokens == pool.tokens
            assert clone.reserve0 == pool.reserve0
            assert clone.reserve1 == pool.reserve1
            assert clone.fee == pool.fee

    def test_weighted_pools_round_trip_flagged(self, registry):
        original = WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp")
        registry.add(original)
        arrays = MarketArrays.from_registry(registry)
        i = arrays.pool_index["wp"]
        assert arrays.family[i] == FAMILY_G3M
        clone = arrays.to_registry()["wp"]
        assert isinstance(clone, WeightedPool)
        assert clone.weight_of(Y) == original.weight_of(Y) == 0.8
        assert clone.weight_of(W) == original.weight_of(W) == 0.2

    def test_pull_refreshes_named_pools_bit_exactly(self, registry):
        arrays = MarketArrays.from_registry(registry)
        registry["xy"].swap(X, 37.5)
        registry["yz"].swap(Z, 11.0)
        arrays.pull(registry, ["xy"])
        assert arrays.reserves("xy") == (
            registry["xy"].reserve0, registry["xy"].reserve1
        )
        # yz was not named: still stale
        assert arrays.reserves("yz") != (
            registry["yz"].reserve0, registry["yz"].reserve1
        )
        arrays.pull(registry)
        assert arrays.reserves("yz") == (
            registry["yz"].reserve0, registry["yz"].reserve1
        )

    def test_pull_ignores_foreign_pool_ids(self, registry):
        arrays = MarketArrays.from_registry(registry)
        registry.create(Y, W, 10_000.0, 10_000.0, pool_id="extra")
        arrays.pull(registry, ["extra"])  # silently skipped
        assert "extra" not in arrays

    def test_fee_columns_quantized_at_build(self, registry):
        from repro.market import FEE_PPM_DENOMINATOR, quantize_fee

        arrays = MarketArrays.from_registry(registry)
        for pool in registry:
            i = arrays.pool_index[pool.pool_id]
            assert arrays.fee[i] == pool.fee
            assert arrays.fee_num[i] == quantize_fee(pool.fee)
        # the V2 default 0.003 quantizes to the 997/1000-equivalent
        assert (arrays.fee_num == FEE_PPM_DENOMINATOR - 3_000).all()

    def test_pull_refreshes_fee_columns(self, registry):
        """Fees are live state, not baked at build: a registry whose
        pool carries a new fee tier must land in *both* fee columns on
        the next pull, so kernel quotes can never silently desync."""
        from repro.market import quantize_fee

        arrays = MarketArrays.from_registry(registry)
        fresh = PoolRegistry()
        fresh.create(X, Y, 1_000.0, 2_000.0, fee=0.01, pool_id="xy")
        for pool_id in ("yz", "zx", "xw"):
            fresh.add(registry[pool_id])
        arrays.pull(fresh, ["xy"])
        i = arrays.pool_index["xy"]
        assert arrays.fee[i] == 0.01
        assert arrays.fee_num[i] == quantize_fee(0.01)
        # kernel quotes through the arrays now price the new gamma:
        # oriented_reserves reads the float column directly
        from repro.market import oriented_reserves

        _x, _y, gamma = oriented_reserves(
            arrays, np.array([i]), np.array([True])
        )
        assert gamma[0] == 1.0 - 0.01

    def test_set_fee_updates_both_columns(self, registry):
        from repro.market import quantize_fee

        arrays = MarketArrays.from_registry(registry)
        arrays.set_fee("yz", 0.0005)
        i = arrays.pool_index["yz"]
        assert arrays.fee[i] == 0.0005
        assert arrays.fee_num[i] == quantize_fee(0.0005)

    def test_set_fee_validates(self, registry):
        arrays = MarketArrays.from_registry(registry)
        with pytest.raises(ValueError, match="fee"):
            arrays.set_fee("yz", 1.0)
        with pytest.raises(UnknownPoolError):
            arrays.set_fee("nope", 0.003)

    def test_apply_swap_matches_object_path(self, registry):
        arrays = MarketArrays.from_registry(registry)
        pool = registry["xy"]
        pool.swap(Y, 123.0)
        event = pool.events[-1]
        dirty = arrays.apply_events([event])
        assert dirty == {"xy"}
        assert arrays.reserves("xy") == (pool.reserve0, pool.reserve1)

    def test_apply_mint_and_burn_match_object_path(self, registry):
        arrays = MarketArrays.from_registry(registry)
        pool = registry["yz"]
        pool.add_liquidity(30.0, 15.0)
        pool.remove_liquidity(0.25)
        arrays.apply_events(pool.events)
        assert arrays.reserves("yz") == (pool.reserve0, pool.reserve1)

    def test_repeated_pool_in_batch_stays_sequential_exact(self, registry):
        arrays = MarketArrays.from_registry(registry)
        pool = registry["zx"]
        pool.swap(Z, 50.0)
        pool.swap(X, 75.0)  # depends on the first swap's reserves
        arrays.apply_events(pool.events)
        assert arrays.reserves("zx") == (pool.reserve0, pool.reserve1)

    def test_ticks_and_blocks_are_noops(self, registry):
        arrays = MarketArrays.from_registry(registry)
        before = arrays.reserves("xy")
        dirty = arrays.apply_events(
            [PriceTickEvent(token=X, price=3.0), BlockEvent(block=7)]
        )
        assert dirty == set()
        assert arrays.reserves("xy") == before

    def test_unknown_pool_rejected(self, registry):
        arrays = MarketArrays.from_registry(registry)
        with pytest.raises(UnknownPoolError):
            arrays.apply_events(
                [SwapEvent(pool_id="nope", token_in=X, token_out=Y,
                           amount_in=1.0, amount_out=1.0)]
            )

    def test_weighted_swap_matches_object_path(self, registry):
        """The columnar mirror must apply G3M (not CPMM) arithmetic to
        weighted rows — bit-identical to WeightedPool.swap."""
        pool = WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp")
        registry.add(pool)
        arrays = MarketArrays.from_registry(registry)
        pool.swap(Y, 7.5)
        pool.swap(W, 12.0)  # second swap sees the first one's reserves
        dirty = arrays.apply_events(pool.events)
        assert dirty == {"wp"}
        assert arrays.reserves("wp") == (pool.reserve0, pool.reserve1)

    def test_weighted_rows_in_distinct_batch_match_object_path(self, registry):
        """A mixed distinct-pool batch: CPMM rows scatter vectorized,
        weighted rows go through the scalar G3M mirror — all exact."""
        wp = WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp")
        registry.add(wp)
        arrays = MarketArrays.from_registry(registry)
        cp = registry["xy"]
        cp.swap(X, 25.0)
        wp.swap(W, 3.0)
        wp_mint = WeightedPool(X, W, 50.0, 60.0, 0.3, 0.7, pool_id="wp2")
        registry.add(wp_mint)
        arrays2 = MarketArrays.from_registry(registry)
        wp_mint.add_liquidity(6.0, 5.0)  # ratio-matched post-normalization
        wp_mint.remove_liquidity(0.25)
        arrays.apply_events([cp.events[-1], wp.events[-1]])
        assert arrays.reserves("xy") == (cp.reserve0, cp.reserve1)
        assert arrays.reserves("wp") == (wp.reserve0, wp.reserve1)
        arrays2.apply_events(wp_mint.events)
        assert arrays2.reserves("wp2") == (wp_mint.reserve0, wp_mint.reserve1)

    def test_weighted_weights_live_in_columns(self, registry):
        pool = WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp")
        registry.add(pool)
        arrays = MarketArrays.from_registry(registry)
        i = arrays.pool_index["wp"]
        assert arrays.weight0[i] == pool.weight_of(pool.token0)
        assert arrays.weight1[i] == pool.weight_of(pool.token1)
        # constant-product rows carry neutral weights
        j = arrays.pool_index["xy"]
        assert (arrays.weight0[j], arrays.weight1[j]) == (1.0, 1.0)

    def test_invalid_events_rejected_like_pools(self, registry):
        arrays = MarketArrays.from_registry(registry)
        with pytest.raises(Exception, match="fraction"):
            arrays.apply_events([BurnEvent(pool_id="xy", fraction=1.5)])
        with pytest.raises(Exception, match="ratio"):
            arrays.apply_events([MintEvent(pool_id="xy", amount0=1.0, amount1=500.0)])

    def test_invalid_event_in_distinct_batch_keeps_prefix_semantics(self, registry):
        """A distinct-pool batch containing an invalid event must raise
        the same error AND leave the same partial state as applying the
        events one by one (the vectorized path falls back)."""
        arrays = MarketArrays.from_registry(registry)
        pool = registry["yz"]
        pool.swap(Y, 10.0)  # records a valid swap on yz
        batch = [
            pool.events[-1],
            BurnEvent(pool_id="xy", fraction=1.5),  # invalid, later in order
        ]
        with pytest.raises(Exception, match="fraction"):
            arrays.apply_events(batch)
        # the valid swap preceding the failure was applied, like the
        # object path's event-by-event prefix
        assert arrays.reserves("yz") == (pool.reserve0, pool.reserve1)
        assert arrays.reserves("xy") == (
            registry["xy"].reserve0, registry["xy"].reserve1
        )
        # reversed order: failure first, nothing applied
        arrays2 = MarketArrays.from_registry(registry)
        before = arrays2.reserves("zx")
        swap_zx = registry["zx"]
        swap_zx.swap(Z, 5.0)
        with pytest.raises(Exception, match="fraction"):
            arrays2.apply_events(
                [BurnEvent(pool_id="xy", fraction=1.5), swap_zx.events[-1]]
            )
        assert arrays2.reserves("zx") == before

    def test_price_vector_marks_missing_tokens_nan(self, registry):
        arrays = MarketArrays.from_registry(registry)
        vec = arrays.price_vector(PriceMap({X: 2.0}))
        by_token = dict(zip(arrays.tokens, vec))
        assert by_token[X] == 2.0
        assert np.isnan(by_token[Y])


class TestCompileLoops:
    def test_groups_by_length_and_tracks_positions(self, registry, loop):
        two = ArbitrageLoop([X, Y], [registry["xy"], registry["xy"]])
        arrays = MarketArrays.from_registry(registry)
        groups, fallback = compile_loops([loop, two], arrays)
        assert fallback == []
        assert [g.length for g in groups] == [2, 3]
        assert [list(g.positions) for g in groups] == [[1], [0]]

    def test_weighted_loops_compile_into_weighted_groups(self, registry, prices):
        registry.add(WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp"))
        mixed = ArbitrageLoop(
            [X, Y, W], [registry["xy"], registry["wp"], registry["xw"]]
        )
        pure = ArbitrageLoop(
            [X, Y, Z], [registry["xy"], registry["yz"], registry["zx"]]
        )
        arrays = MarketArrays.from_registry(registry)
        groups, fallback = compile_loops([mixed, pure], arrays)
        assert fallback == []
        assert [(g.length, g.weighted) for g in groups] == [(3, False), (3, True)]
        assert [list(g.positions) for g in groups] == [[1], [0]]

    def test_equal_weight_g3m_pools_stay_in_weighted_groups(self, registry):
        """A 50/50 WeightedPool reduces to the V2 formula mathematically,
        but the scalar path still routes it through the chain optimizer —
        so must the compiled grouping."""
        registry.add(WeightedPool(Y, W, 100.0, 400.0, 0.5, 0.5, pool_id="wp"))
        mixed = ArbitrageLoop(
            [X, Y, W], [registry["xy"], registry["wp"], registry["xw"]]
        )
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops([mixed], arrays)
        assert [g.weighted for g in groups] == [True]

    def test_foreign_pools_fall_back(self, registry):
        foreign = Pool(Y, W, 10.0, 10.0, pool_id="elsewhere")
        loop = ArbitrageLoop(
            [X, Y, W], [registry["xy"], foreign, registry["xw"]]
        )
        arrays = MarketArrays.from_registry(registry)
        groups, fallback = compile_loops([loop], arrays)
        assert groups == [] and fallback == [0]

    def test_orientation_and_pool_rows(self, registry, loop):
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops([loop], arrays)
        group = groups[0]
        for j, (token_in, _token_out, pool) in enumerate(
            loop.rotations()[0].hops()
        ):
            assert group.pool_idx[0, j] == arrays.pool_index[pool.pool_id]
            assert group.orient[0, j] == (token_in == pool.token0)


class TestBatchQuotes:
    def test_quotes_match_scalar_rotation_quote(self, registry, loop):
        from repro.strategies.traditional import rotation_quote

        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops([loop], arrays)
        group = groups[0]
        for offset in range(3):
            quotes = batch_quotes(arrays, group, offset)
            ref = rotation_quote(loop.rotations()[offset])
            assert quotes.quote(0) == ref

    def test_per_loop_offsets_gather(self, registry, loop):
        from repro.strategies.traditional import rotation_quote

        other = ArbitrageLoop(
            [Z, Y, X], [registry["yz"], registry["xy"], registry["zx"]]
        )
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops([loop, other], arrays)
        group = groups[0]
        quotes = batch_quotes(arrays, group, np.array([2, 1]))
        assert quotes.quote(0) == rotation_quote(loop.rotations()[2])
        assert quotes.quote(1) == rotation_quote(other.rotations()[1])


class TestBatchKind:
    def test_fixed_start_strategies_qualify_on_every_solver(self):
        assert batch_kind(TraditionalStrategy()) == "traditional"
        assert batch_kind(TraditionalStrategy(start_token=X)) == "traditional"
        assert batch_kind(MaxPriceStrategy()) == "maxprice"
        assert batch_kind(MaxMaxStrategy()) == "maxmax"
        assert batch_kind(TraditionalStrategy(method="bisection")) == "traditional"
        assert batch_kind(TraditionalStrategy(method="golden")) == "traditional"
        assert batch_kind(MaxPriceStrategy(method="bisection")) == "maxprice"
        assert batch_kind(MaxMaxStrategy(method="golden")) == "maxmax"

    def test_convex_and_unknown_solvers_stay_scalar(self):
        assert batch_kind(ConvexOptimizationStrategy()) is None
        assert batch_kind(MaxMaxStrategy(method="sorcery")) is None

    def test_subclasses_stay_scalar(self):
        class Custom(MaxMaxStrategy):
            pass

        assert batch_kind(Custom()) is None


def _strategy_id(s):
    parts = [type(s).__name__]
    if getattr(s, "start_token", None):
        parts.append(s.start_token.symbol)
    method = getattr(s, "method", None)
    if method and method != "closed_form":
        parts.append(method)
    return "-".join(parts)


class TestBatchEvaluator:
    def _loops(self, registry):
        return [
            ArbitrageLoop([X, Y, Z], [registry["xy"], registry["yz"], registry["zx"]]),
            ArbitrageLoop([Z, Y, X], [registry["yz"], registry["xy"], registry["zx"]]),
        ]

    def _mixed_loops(self, registry):
        """Two CPMM loops plus two crossing a weighted (G3M) hop."""
        if "wp" not in registry:
            registry.add(
                WeightedPool(Y, W, 100.0, 400.0, 0.8, 0.2, pool_id="wp")
            )
        return self._loops(registry) + [
            ArbitrageLoop([X, Y, W], [registry["xy"], registry["wp"], registry["xw"]]),
            ArbitrageLoop([W, Y, X], [registry["wp"], registry["xy"], registry["xw"]]),
        ]

    @pytest.mark.parametrize(
        "strategy",
        [
            TraditionalStrategy(),
            TraditionalStrategy(start_token=Y),
            TraditionalStrategy(method="bisection"),
            TraditionalStrategy(method="golden"),
            MaxPriceStrategy(),
            MaxPriceStrategy(method="bisection"),
            MaxPriceStrategy(method="golden"),
            MaxMaxStrategy(),
            MaxMaxStrategy(method="bisection"),
            MaxMaxStrategy(method="golden"),
            ConvexOptimizationStrategy(),
        ],
        ids=_strategy_id,
    )
    def test_bit_identical_to_scalar(self, registry, prices, strategy):
        loops = self._mixed_loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        batch = evaluator.evaluate_many(strategy, prices)
        for got, loop in zip(batch, loops):
            ref = strategy.evaluate_cached(loop, prices, None)
            assert got.monetized_profit == ref.monetized_profit
            assert got.amount_in == ref.amount_in
            assert got.hop_amounts == ref.hop_amounts
            assert got.profit == ref.profit
            assert got.start_token == ref.start_token
            assert got.details == ref.details
            assert got.loop == ref.loop

    def test_indices_select_and_align(self, registry, prices):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        out = evaluator.evaluate_many(MaxMaxStrategy(), prices, indices=[1])
        assert len(out) == 1
        assert out[0].loop == loops[1]

    def test_small_sets_fall_back_to_cached_scalar(self, registry, prices):
        from repro.engine import PoolStateCache

        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=10)
        cache = PoolStateCache()
        evaluator.evaluate_many(MaxMaxStrategy(), prices, cache=cache)
        assert cache.misses > 0  # went through the scalar cached path

    def test_missing_price_raises_like_scalar(self, registry):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        sparse = PriceMap({X: 1.0, Y: 1.0})  # Z unpriced
        with pytest.raises(MissingPriceError, match="'Z'"):
            evaluator.evaluate_many(MaxPriceStrategy(), sparse)

    def test_traditional_missing_start_raises(self, registry, prices):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        with pytest.raises(StrategyError, match="start token"):
            evaluator.evaluate_many(TraditionalStrategy(start_token=W), prices)

    def test_refresh_rereads_source_pools(self, registry, prices):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)  # owns its arrays
        registry["xy"].swap(X, 150.0)
        evaluator.refresh()
        assert evaluator.arrays.reserves("xy") == (
            registry["xy"].reserve0, registry["xy"].reserve1
        )
        with pytest.raises(RuntimeError, match="caller-owned"):
            BatchEvaluator(
                loops, arrays=MarketArrays.from_registry(registry)
            ).refresh()

    def test_positions_for_identity_subset(self, registry):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        assert evaluator.positions_for([loops[1]]) == [1]
        assert evaluator.positions_for(loops) == [0, 1]
        # an equal but distinct loop object is NOT the compiled one
        clone = ArbitrageLoop(loops[0].tokens, loops[0].pools)
        assert evaluator.positions_for([clone]) is None

    def test_pull_tracks_object_mutations(self, registry, prices):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry), min_batch=1
        )
        strategy = MaxMaxStrategy()
        registry["xy"].swap(X, 200.0)
        evaluator.pull(registry, ["xy"])
        batch = evaluator.evaluate_many(strategy, prices)
        for got, loop in zip(batch, loops):
            ref = strategy.evaluate_cached(loop, prices, None)
            assert got.monetized_profit == ref.monetized_profit

    def test_weighted_loops_never_forced_scalar(self, registry, prices):
        """The acceptance gate: mixed CPMM+weighted loop sets route
        entirely through the kernels under every fixed-start strategy
        and solver — zero scalar evaluations."""
        loops = self._mixed_loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=1)
        assert evaluator.fallback_positions == []
        for strategy in (
            TraditionalStrategy(),
            TraditionalStrategy(method="bisection"),
            MaxPriceStrategy(method="golden"),
            MaxMaxStrategy(),
        ):
            evaluator.evaluate_many(strategy, prices)
        assert evaluator.stats.scalar_loops == 0
        assert evaluator.stats.kernel_loops == 4 * len(loops)
        assert evaluator.stats.kernel_passes > 0

    def test_stats_count_small_slice_and_convex_fallbacks(self, registry, prices):
        loops = self._loops(registry)
        evaluator = BatchEvaluator(loops, min_batch=10)
        evaluator.evaluate_many(MaxMaxStrategy(), prices)  # below min_batch
        assert evaluator.stats.scalar_loops == len(loops)
        evaluator.stats.reset()
        evaluator.min_batch = 1
        evaluator.evaluate_many(ConvexOptimizationStrategy(), prices)
        assert evaluator.stats.scalar_loops == len(loops)
        assert evaluator.stats.kernel_loops == 0


class TestKernelWarningHygiene:
    """The market-layer modules run with RuntimeWarning escalated to
    errors (see pyproject); the kernels must stay silent even on
    degenerate reserves because the closed form is evaluated masked,
    exactly like the scalar path that never computes the formula for
    unprofitable rotations."""

    def _degenerate_registry(self):
        """Reserves so large that a*b overflows float64 in the dead
        (unprofitable) branch of the closed form."""
        registry = PoolRegistry()
        registry.create(X, Y, 1e80, 1e80, pool_id="gxy")
        registry.create(Y, Z, 1e80, 1e80, pool_id="gyz")
        registry.create(Z, X, 1e80, 1e80, pool_id="gzx")
        return registry

    def test_closed_form_is_silent_on_degenerate_reserves(self):
        import warnings

        registry = self._degenerate_registry()
        loop = ArbitrageLoop(
            [X, Y, Z], [registry["gxy"], registry["gyz"], registry["gzx"]]
        )
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops([loop], arrays)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            quotes = batch_quotes(arrays, groups[0], 0)
        # the fee makes the balanced giant loop unprofitable: the scalar
        # path returns the zero quote without ever touching sqrt(a*b)
        from repro.strategies.traditional import rotation_quote

        assert quotes.quote(0) == rotation_quote(loop.rotations()[0])
        assert quotes.amount_in[0] == 0.0

    def test_evaluator_is_silent_on_degenerate_reserves(self):
        import warnings

        registry = self._degenerate_registry()
        loop = ArbitrageLoop(
            [X, Y, Z], [registry["gxy"], registry["gyz"], registry["gzx"]]
        )
        evaluator = BatchEvaluator([loop], min_batch=1)
        prices = PriceMap({X: 1.0, Y: 1.0, Z: 1.0})
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            results = evaluator.evaluate_many(MaxMaxStrategy(), prices)
        ref = MaxMaxStrategy().evaluate_cached(loop, prices, None)
        assert results[0].monetized_profit == ref.monetized_profit == 0.0

    def test_iterative_kernels_mirror_scalar_on_degenerate_reserves(self):
        """Where scalar Python-float arithmetic silently propagates
        inf/NaN and then fails (or resolves) in the solver, the batch
        kernels must do exactly the same — no RuntimeWarning, same
        exception type or same zero quote."""
        import warnings

        from repro.core.errors import SolverConvergenceError

        registry = self._degenerate_registry()
        loop = ArbitrageLoop(
            [X, Y, Z], [registry["gxy"], registry["gyz"], registry["gzx"]]
        )
        prices = PriceMap({X: 1.0, Y: 1.0, Z: 1.0})
        # bisection: a*b overflows -> NaN rate -> both paths grind the
        # bracket past max_iter and raise SolverConvergenceError
        scalar = MaxMaxStrategy(method="bisection")
        with pytest.raises(SolverConvergenceError):
            scalar.evaluate_cached(loop, prices, None)
        evaluator = BatchEvaluator([loop], min_batch=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(SolverConvergenceError):
                evaluator.evaluate_many(scalar, prices)
        # golden: the is_profitable pre-check masks the degenerate rows
        # on both paths -> silent zero quotes
        golden = MaxMaxStrategy(method="golden")
        ref = golden.evaluate_cached(loop, prices, None)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            got = BatchEvaluator([loop], min_batch=1).evaluate_many(
                golden, prices
            )
        assert got[0].monetized_profit == ref.monetized_profit == 0.0

    def test_weighted_kernel_overflow_fails_loudly_like_scalar(self):
        """pow overflow at absurd weighted magnitudes raises
        OverflowError on both paths (pinned_pow's contract), never a
        silent NaN quote."""
        registry = PoolRegistry()
        registry.add(
            WeightedPool(X, Y, 1e40, 1e40, 0.9, 0.1, pool_id="gw-xy")
        )
        registry.create(Y, Z, 1e3, 1e3, pool_id="gw-yz")
        registry.create(Z, X, 1e3, 1e3, pool_id="gw-zx")
        loop = ArbitrageLoop(
            [X, Y, Z], [registry["gw-xy"], registry["gw-yz"], registry["gw-zx"]]
        )
        prices = PriceMap({X: 1.0, Y: 1.0, Z: 1.0})
        with pytest.raises(OverflowError):
            MaxMaxStrategy().evaluate_cached(loop, prices, None)
        evaluator = BatchEvaluator([loop], min_batch=1)
        with pytest.raises(OverflowError):
            evaluator.evaluate_many(MaxMaxStrategy(), prices)

    def test_giant_cp_hop_in_weighted_loop_mirrors_scalar(self):
        """A mixed column's constant-product lanes must stay *silent*
        where their scalar twin is plain Python-float math: here the
        loud OverflowError comes from the weighted hop (pinned_pow on
        both paths, same operands), not from the CP lane's denom²."""
        import warnings

        registry = PoolRegistry()
        registry.create(X, Y, 1e155, 1e155, pool_id="big-xy")
        registry.add(WeightedPool(Y, Z, 1e3, 1e3, 0.6, 0.4, pool_id="gw-yz"))
        registry.create(Z, X, 1e3, 1e3, pool_id="g-zx")
        loop = ArbitrageLoop(
            [X, Y, Z], [registry["big-xy"], registry["gw-yz"], registry["g-zx"]]
        )
        prices = PriceMap({X: 1.0, Y: 1.0, Z: 1.0})
        with pytest.raises(OverflowError):
            MaxMaxStrategy().evaluate_cached(loop, prices, None)
        evaluator = BatchEvaluator([loop], min_batch=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(OverflowError):
                evaluator.evaluate_many(MaxMaxStrategy(), prices)
