"""Unit tests for the convex-program IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimize import (
    AffineConstraint,
    ConvexProgram,
    HopConstraint,
    LinearEquality,
)


class TestAffineConstraint:
    def test_value_and_grad(self):
        con = AffineConstraint(coeffs=np.array([1.0, -2.0]), offset=3.0)
        v = np.array([2.0, 1.0])
        assert con.value(v) == pytest.approx(3.0)
        assert np.allclose(con.grad(v), [1.0, -2.0])
        assert np.allclose(con.hess(v), np.zeros((2, 2)))


class TestHopConstraint:
    def make(self):
        return HopConstraint(x=100.0, y=200.0, gamma=0.997, idx_in=0, idx_out=1, n_vars=2)

    def test_value_zero_on_exact_swap(self):
        con = self.make()
        t = 10.0
        out = 200.0 * 0.997 * t / (100.0 + 0.997 * t)
        assert con.value(np.array([t, out])) == pytest.approx(0.0, abs=1e-12)

    def test_value_positive_below_curve(self):
        con = self.make()
        assert con.value(np.array([10.0, 1.0])) > 0

    def test_value_negative_above_curve(self):
        con = self.make()
        assert con.value(np.array([10.0, 100.0])) < 0

    def test_grad_matches_finite_difference(self):
        con = self.make()
        v = np.array([10.0, 5.0])
        g = con.grad(v)
        h = 1e-6
        for k in range(2):
            vp, vm = v.copy(), v.copy()
            vp[k] += h
            vm[k] -= h
            fd = (con.value(vp) - con.value(vm)) / (2 * h)
            assert g[k] == pytest.approx(fd, rel=1e-6)

    def test_hess_matches_finite_difference(self):
        con = self.make()
        v = np.array([10.0, 5.0])
        hess = con.hess(v)
        h = 1e-5
        vp, vm = v.copy(), v.copy()
        vp[0] += h
        vm[0] -= h
        fd = (con.grad(vp)[0] - con.grad(vm)[0]) / (2 * h)
        assert hess[0, 0] == pytest.approx(fd, rel=1e-4)
        assert hess[0, 0] < 0  # concavity in the input direction

    def test_validation(self):
        with pytest.raises(ValueError, match="reserves"):
            HopConstraint(x=0.0, y=1.0, gamma=0.997, idx_in=0, idx_out=1, n_vars=2)
        with pytest.raises(ValueError, match="gamma"):
            HopConstraint(x=1.0, y=1.0, gamma=0.0, idx_in=0, idx_out=1, n_vars=2)


class TestLinearEquality:
    def test_residual(self):
        eq = LinearEquality(coeffs=np.array([1.0, 1.0]), rhs=2.0)
        assert eq.residual(np.array([1.0, 1.0])) == pytest.approx(0.0)
        assert eq.residual(np.array([2.0, 1.0])) == pytest.approx(1.0)


class TestConvexProgram:
    def make(self):
        return ConvexProgram(
            n_vars=2,
            objective=np.array([1.0, 1.0]),
            inequalities=[
                AffineConstraint(coeffs=np.array([-1.0, 0.0]), offset=5.0),  # v0 <= 5
                AffineConstraint(coeffs=np.array([0.0, -1.0]), offset=5.0),  # v1 <= 5
            ],
        )

    def test_objective_value(self):
        program = self.make()
        assert program.objective_value([2.0, 3.0]) == pytest.approx(5.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="objective"):
            ConvexProgram(n_vars=3, objective=np.array([1.0, 1.0]))

    def test_var_names_validation(self):
        with pytest.raises(ValueError, match="names"):
            ConvexProgram(
                n_vars=2, objective=np.zeros(2), var_names=("only-one",)
            )

    def test_feasibility(self):
        program = self.make()
        assert program.is_feasible([1.0, 1.0])
        assert not program.is_feasible([6.0, 1.0])
        assert not program.is_feasible([-1.0, 1.0])  # nonneg bound

    def test_strict_feasibility(self):
        program = self.make()
        assert program.is_strictly_feasible([1.0, 1.0])
        assert not program.is_strictly_feasible([5.0, 1.0])  # boundary
        assert not program.is_strictly_feasible([0.0, 1.0])  # bound boundary

    def test_inequality_values(self):
        program = self.make()
        vals = program.inequality_values([1.0, 2.0])
        assert np.allclose(vals, [4.0, 3.0])

    def test_equality_residuals(self):
        program = ConvexProgram(
            n_vars=2,
            objective=np.zeros(2),
            equalities=[LinearEquality(coeffs=np.array([1.0, -1.0]), rhs=0.0)],
        )
        assert np.allclose(program.equality_residuals([2.0, 2.0]), [0.0])
        assert not program.is_feasible([2.0, 1.0])
