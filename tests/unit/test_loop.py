"""Unit tests for ArbitrageLoop and Rotation."""

from __future__ import annotations

import math

import pytest

from repro.amm import Pool
from repro.core import ArbitrageLoop, DegenerateLoopError, Rotation, Token

X, Y, Z, W = Token("X"), Token("Y"), Token("Z"), Token("W")


def make_pools():
    return [
        Pool(X, Y, 100.0, 200.0, pool_id="xy"),
        Pool(Y, Z, 300.0, 200.0, pool_id="yz"),
        Pool(Z, X, 200.0, 400.0, pool_id="zx"),
    ]


class TestConstruction:
    def test_valid_loop(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        assert len(loop) == 3
        assert loop.tokens == (X, Y, Z)

    def test_two_token_loop_allowed(self):
        # two parallel pools between the same pair form a 2-loop
        p1 = Pool(X, Y, 100.0, 220.0, pool_id="p1")
        p2 = Pool(X, Y, 100.0, 200.0, pool_id="p2")
        loop = ArbitrageLoop([X, Y], [p1, p2])
        assert len(loop) == 2

    def test_single_token_rejected(self):
        with pytest.raises(DegenerateLoopError, match="at least 2"):
            ArbitrageLoop([X], [make_pools()[0]])

    def test_token_pool_count_mismatch(self):
        with pytest.raises(DegenerateLoopError, match="exactly one pool"):
            ArbitrageLoop([X, Y, Z], make_pools()[:2])

    def test_duplicate_tokens_rejected(self):
        pools = make_pools()
        with pytest.raises(DegenerateLoopError, match="distinct"):
            ArbitrageLoop([X, Y, X], pools)

    def test_mismatched_hop_pool_rejected(self):
        pools = make_pools()
        pools[0], pools[1] = pools[1], pools[0]  # xy pool no longer serves hop 0
        with pytest.raises(DegenerateLoopError, match="does not match"):
            ArbitrageLoop([X, Y, Z], pools)


class TestIdentity:
    def test_rotation_invariant_equality(self):
        pools = make_pools()
        a = ArbitrageLoop([X, Y, Z], pools)
        b = ArbitrageLoop([Y, Z, X], [pools[1], pools[2], pools[0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_direction_sensitive(self):
        pools = make_pools()
        forward = ArbitrageLoop([X, Y, Z], pools)
        assert forward != forward.reversed()

    def test_different_pools_differ(self):
        pools = make_pools()
        alt = Pool(X, Y, 100.0, 210.0, pool_id="xy2")
        a = ArbitrageLoop([X, Y, Z], pools)
        b = ArbitrageLoop([X, Y, Z], [alt, pools[1], pools[2]])
        assert a != b

    def test_usable_in_sets(self):
        pools = make_pools()
        a = ArbitrageLoop([X, Y, Z], pools)
        b = ArbitrageLoop([Z, X, Y], [pools[2], pools[0], pools[1]])
        assert len({a, b}) == 1


class TestReversal:
    def test_reversed_tokens_and_pools(self):
        pools = make_pools()
        rev = ArbitrageLoop([X, Y, Z], pools).reversed()
        assert rev.tokens == (X, Z, Y)
        assert [p.pool_id for p in rev.pools] == ["zx", "yz", "xy"]

    def test_double_reverse_is_identity(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        assert loop.reversed().reversed() == loop

    def test_reverse_of_profitable_loop_is_unprofitable(self, s5_loop):
        assert s5_loop.is_arbitrage()
        assert not s5_loop.reversed().is_arbitrage()


class TestRotations:
    def test_all_rotations(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        rotations = loop.rotations()
        assert len(rotations) == 3
        assert [r.start_token for r in rotations] == [X, Y, Z]

    def test_rotation_from(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        rot = loop.rotation_from(Z)
        assert rot.start_token == Z
        assert rot.tokens == (Z, X, Y)
        assert [p.pool_id for p in rot.pools] == ["zx", "xy", "yz"]

    def test_rotation_from_foreign_token(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        with pytest.raises(DegenerateLoopError):
            loop.rotation_from(W)

    def test_hops_chain(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        for rotation in loop.rotations():
            hops = list(rotation.hops())
            assert hops[0][0] == rotation.start_token
            for (a_in, a_out, _), (b_in, _b_out, _b) in zip(hops, hops[1:]):
                assert a_out == b_in
            assert hops[-1][1] == rotation.start_token

    def test_simulate_lengths(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        amounts = loop.rotations()[0].simulate(10.0)
        assert len(amounts) == 4
        assert amounts[0] == 10.0

    def test_rotation_equality(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        assert Rotation(loop, 0) == Rotation(loop, 3)  # offsets mod n
        assert Rotation(loop, 0) != Rotation(loop, 1)

    def test_repr(self):
        loop = ArbitrageLoop([X, Y, Z], make_pools())
        assert "X -> Y -> Z -> X" in repr(loop)
        assert "Z -> X -> Y -> Z" in repr(loop.rotation_from(Z))


class TestArbitrageCriterion:
    def test_log_rate_sum_positive_for_arb(self, s5_loop):
        assert s5_loop.log_rate_sum() > 0
        assert s5_loop.is_arbitrage()

    def test_log_rate_sum_matches_composition(self, s5_loop):
        assert s5_loop.log_rate_sum() == pytest.approx(
            math.log(s5_loop.composition().rate_at_zero)
        )

    def test_rotation_invariance_of_log_rate_sum(self):
        pools = make_pools()
        a = ArbitrageLoop([X, Y, Z], pools)
        b = ArbitrageLoop([Y, Z, X], [pools[1], pools[2], pools[0]])
        assert a.log_rate_sum() == pytest.approx(b.log_rate_sum())

    def test_no_arb_loop(self, no_arb_loop):
        assert no_arb_loop.log_rate_sum() < 0
        assert not no_arb_loop.is_arbitrage()

    def test_tolerance_parameter(self, s5_loop):
        huge_tol = s5_loop.log_rate_sum() + 1.0
        assert not s5_loop.is_arbitrage(tol=huge_tol)
