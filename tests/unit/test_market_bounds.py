"""Unit tests for the monetized profit upper bounds
(:mod:`repro.market.bounds`) and the pruning entry points they power
(:meth:`BatchEvaluator.evaluate_many` two-phase mode,
:meth:`BatchEvaluator.evaluate_top_k`, :func:`pruned_zero_result`).

The soundness contract under test: a bound is *never* below the exact
kernel profit, and a bound of exactly ``0.0`` proves the exact profit
is non-positive.  The hypothesis suite in
``tests/property/test_bound_soundness.py`` hammers the same contract
on random mixed markets; here the cases are small and deterministic.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.amm import PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import (
    BatchEvaluator,
    MarketArrays,
    below_threshold,
    pruned_zero_result,
)
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

X, Y, Z, W = Token("X"), Token("Y"), Token("Z"), Token("W")


@pytest.fixture
def registry():
    registry = PoolRegistry()
    # a profitable CP triangle, a flat CP triangle, and a weighted leg
    registry.create(X, Y, 1_000.0, 2_000.0, pool_id="xy")
    registry.create(Y, Z, 3_000.0, 1_500.0, pool_id="yz")
    registry.create(Z, X, 900.0, 1_800.0, pool_id="zx")
    registry.create(X, W, 5_000.0, 5_000.0, pool_id="xw")
    registry.create(Y, W, 4_000.0, 4_000.0, pool_id="yw")
    registry.add(
        WeightedPool(Z, W, 2_000.0, 1_000.0, weight0=0.7, weight1=0.3,
                     pool_id="zw")
    )
    return registry


@pytest.fixture
def loops(registry):
    return [
        ArbitrageLoop([X, Y, Z], [registry["xy"], registry["yz"], registry["zx"]]),
        ArbitrageLoop([X, Y, W], [registry["xy"], registry["yw"], registry["xw"]]),
        ArbitrageLoop([Y, Z, W], [registry["yz"], registry["zw"], registry["yw"]]),
        ArbitrageLoop([X, W, Z], [registry["xw"], registry["zw"], registry["zx"]]),
    ]


@pytest.fixture
def prices():
    return PriceMap({X: 10.0, Y: 5.0, Z: 20.0, W: 1.0})


def make_evaluator(registry, loops, **kwargs):
    return BatchEvaluator(
        loops, arrays=MarketArrays.from_registry(registry), **kwargs
    )


STRATEGIES = [
    MaxMaxStrategy(),
    MaxMaxStrategy(method="bisection"),
    MaxMaxStrategy(method="golden"),
    MaxPriceStrategy(),
    TraditionalStrategy(start_token=X),
]


class TestBelowThreshold:
    def test_prunable_means_below_threshold_or_nonpositive(self):
        values = np.array([5.0, 2.0, 0.0, -1.0, 3.0])
        out = below_threshold(values, 3.0)
        assert out.tolist() == [False, True, True, True, False]

    def test_zero_threshold_prunes_only_nonpositive(self):
        values = np.array([1e-12, 0.0, -5.0])
        assert below_threshold(values, 0.0).tolist() == [False, True, True]

    def test_nan_is_never_prunable(self):
        values = np.array([np.nan, 1.0])
        assert below_threshold(values, 10.0).tolist() == [False, True]
        assert below_threshold(values, 0.0).tolist() == [False, False]


class TestBoundSoundness:
    @pytest.mark.parametrize(
        "strategy", STRATEGIES, ids=lambda s: type(s).__name__ + "-" + s.method
    )
    def test_bound_dominates_exact_profit(self, registry, loops, prices, strategy):
        if isinstance(strategy, TraditionalStrategy):
            # loops without the numeraire raise on exact evaluation
            loops = [loop for loop in loops if strategy.start_token in loop.tokens]
        evaluator = make_evaluator(registry, loops)
        bounds = evaluator.monetized_bounds(strategy, prices)
        results = evaluator.evaluate_many(strategy, prices)
        for bound, result in zip(bounds, results):
            exact = result.monetized_profit
            if math.isnan(bound):
                continue  # unprunable: the exact path owns this row
            assert bound >= exact, f"bound {bound} < exact {exact}"
            if bound == 0.0:
                assert exact <= 0.0

    def test_bounds_are_finite_for_batchable_loops(
        self, registry, loops, prices
    ):
        evaluator = make_evaluator(registry, loops)
        bounds = evaluator.monetized_bounds(MaxMaxStrategy(), prices)
        assert np.isfinite(bounds).all()

    def test_nonbatchable_strategy_gets_vacuous_bounds(
        self, registry, loops, prices
    ):
        evaluator = make_evaluator(registry, loops)
        bounds = evaluator.monetized_bounds(ConvexOptimizationStrategy(), prices)
        assert np.isinf(bounds).all()
        # +inf is never prunable at any threshold
        assert not below_threshold(bounds, 1e12).any()

    def test_traditional_absent_start_token_is_nan(
        self, registry, loops, prices
    ):
        # loop [Y, Z, W] does not contain X: no traditional quote
        # exists, so the bound must refuse to prune it
        evaluator = make_evaluator(registry, loops)
        bounds = evaluator.monetized_bounds(
            TraditionalStrategy(start_token=X), prices
        )
        assert math.isnan(bounds[2])
        assert not below_threshold(bounds, 1e12)[2]

    def test_indices_subset_aligns_with_positions(self, registry, loops, prices):
        evaluator = make_evaluator(registry, loops)
        full = evaluator.monetized_bounds(MaxMaxStrategy(), prices)
        sub = evaluator.monetized_bounds(MaxMaxStrategy(), prices, indices=[3, 1])
        assert sub[0] == full[3]
        assert sub[1] == full[1]


class TestTwoPhaseEvaluateMany:
    def test_threshold_none_returns_every_result(self, registry, loops, prices):
        evaluator = make_evaluator(registry, loops)
        results = evaluator.evaluate_many(MaxMaxStrategy(), prices)
        assert all(r is not None for r in results)
        assert evaluator.stats.pruned_loops == 0

    def test_pruned_rows_are_none_and_provably_below(
        self, registry, loops, prices
    ):
        strategy = MaxMaxStrategy()
        oracle = make_evaluator(registry, loops).evaluate_many(strategy, prices)
        threshold = sorted(
            (r.monetized_profit for r in oracle), reverse=True
        )[0]  # only the best survives
        evaluator = make_evaluator(registry, loops)
        results = evaluator.evaluate_many(
            strategy, prices, threshold=threshold
        )
        assert evaluator.stats.pruned_loops == sum(
            1 for r in results if r is None
        )
        for exact, pruned in zip(oracle, results):
            if pruned is None:
                assert (
                    exact.monetized_profit < threshold
                    or exact.monetized_profit <= 0.0
                )
            else:
                assert pruned.monetized_profit == exact.monetized_profit

    def test_stored_profit_protects_live_book_entries(
        self, registry, loops, prices
    ):
        strategy = MaxMaxStrategy()
        evaluator = make_evaluator(registry, loops)
        huge = 1e18  # prune threshold far above every bound
        all_pruned = evaluator.evaluate_many(
            strategy, prices, threshold=huge,
            stored=[0.0] * len(loops),
        )
        assert all(r is None for r in all_pruned)
        # a stored profit at/above the threshold forces the re-quote
        protected = evaluator.evaluate_many(
            strategy, prices, threshold=huge,
            stored=[0.0, huge, 0.0, 0.0],
        )
        assert protected[1] is not None
        assert [r is None for r in protected] == [True, False, True, True]

    def test_zero_threshold_keeps_profitable_loops(
        self, registry, loops, prices
    ):
        strategy = MaxMaxStrategy()
        oracle = make_evaluator(registry, loops).evaluate_many(strategy, prices)
        evaluator = make_evaluator(registry, loops)
        results = evaluator.evaluate_many(strategy, prices, threshold=0.0)
        for exact, got in zip(oracle, results):
            if exact.monetized_profit > 0.0:
                assert got is not None
                assert got.monetized_profit == exact.monetized_profit


class TestEvaluateTopK:
    def test_matches_exhaustive_ranking(self, registry, loops, prices):
        strategy = MaxMaxStrategy()
        oracle = make_evaluator(registry, loops).evaluate_many(strategy, prices)
        expected = sorted(
            ((r.monetized_profit, i) for i, r in enumerate(oracle)),
            key=lambda pair: (-pair[0], loops[pair[1]].canonical_id),
        )[:2]
        evaluator = make_evaluator(registry, loops)
        scored, pruned = evaluator.evaluate_top_k(strategy, prices, k=2)
        got = sorted(
            scored, key=lambda pair: (-pair[0], loops[pair[1]].canonical_id)
        )[:2]
        assert got == expected
        assert pruned == len(loops) - len(scored)

    def test_prunes_on_larger_market(self):
        from repro.data.synthetic import SyntheticMarketGenerator
        from repro.engine.core import LoopUniverse

        market = SyntheticMarketGenerator(
            n_tokens=12, n_pools=40, seed=3, price_noise=0.02
        ).generate()
        loops = LoopUniverse(market.registry, 3).candidates
        strategy = MaxMaxStrategy()
        oracle = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(market.registry)
        ).evaluate_many(strategy, market.prices)
        expected = sorted(
            ((r.monetized_profit, loops[i].canonical_id)
             for i, r in enumerate(oracle)),
            key=lambda pair: (-pair[0], pair[1]),
        )[:5]
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(market.registry)
        )
        scored, pruned = evaluator.evaluate_top_k(strategy, market.prices, k=5)
        got = sorted(
            ((profit, loops[position].canonical_id)
             for profit, position in scored),
            key=lambda pair: (-pair[0], pair[1]),
        )[:5]
        assert got == expected
        assert pruned > 0  # the bound ordering actually saved quotes
        assert len(scored) + pruned == len(loops)

    def test_k_zero_and_empty(self, registry, loops, prices):
        evaluator = make_evaluator(registry, loops)
        scored, pruned = evaluator.evaluate_top_k(MaxMaxStrategy(), prices, k=0)
        assert len(scored) + pruned == len(loops)
        empty = BatchEvaluator([], arrays=MarketArrays([]))
        assert empty.evaluate_top_k(MaxMaxStrategy(), prices, k=3) == ([], 0)


class TestPrunedZeroResult:
    def test_maxmax_placeholder(self, registry, loops, prices):
        result = pruned_zero_result(MaxMaxStrategy(), loops[0], prices)
        assert result.monetized_profit == 0.0
        assert result.amount_in == 0.0
        assert result.details["pruned"] is True
        assert set(result.details["per_rotation"]) == {"X", "Y", "Z"}
        assert all(v == 0.0 for v in result.details["per_rotation"].values())

    def test_traditional_placeholder_starts_at_the_start_token(
        self, registry, loops, prices
    ):
        result = pruned_zero_result(
            TraditionalStrategy(start_token=X), loops[0], prices
        )
        assert result.monetized_profit == 0.0
        assert result.start_token == X
        assert result.details["pruned"] is True

    def test_maxprice_placeholder_uses_max_price_token(
        self, registry, loops, prices
    ):
        result = pruned_zero_result(MaxPriceStrategy(), loops[0], prices)
        assert result.monetized_profit == 0.0
        # Z at $20 is the loop's max-price token
        assert result.start_token == Z

    def test_nonbatchable_strategy_rejected(self, registry, loops, prices):
        with pytest.raises(ValueError, match="batch kind"):
            pruned_zero_result(ConvexOptimizationStrategy(), loops[0], prices)
