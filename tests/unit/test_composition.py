"""Unit tests for the linear-fractional composition algebra."""

from __future__ import annotations

import math

import pytest

from repro.amm import IDENTITY, Pool, SwapComposition, compose_hops
from repro.core import Token


class TestConstruction:
    def test_from_hop_coefficients(self):
        comp = SwapComposition.from_hop(100.0, 200.0, 0.003)
        assert comp.a == pytest.approx(200.0 * 0.997)
        assert comp.b == 100.0
        assert comp.c == pytest.approx(0.997)

    def test_invalid_coefficients(self):
        with pytest.raises(ValueError):
            SwapComposition(a=-1.0, b=1.0, c=1.0)
        with pytest.raises(ValueError):
            SwapComposition(a=1.0, b=0.0, c=1.0)
        with pytest.raises(ValueError):
            SwapComposition(a=1.0, b=1.0, c=-1.0)
        with pytest.raises(ValueError):
            SwapComposition(a=math.inf, b=1.0, c=1.0)

    def test_from_hop_validates(self):
        with pytest.raises(ValueError):
            SwapComposition.from_hop(-1.0, 1.0, 0.003)
        with pytest.raises(ValueError):
            SwapComposition.from_hop(1.0, 1.0, 1.0)


class TestEvaluation:
    def test_single_hop_matches_pool_quote(self):
        pool = Pool(Token("X"), Token("Y"), 100.0, 200.0)
        comp = SwapComposition.from_hop(100.0, 200.0, 0.003)
        for dx in (0.0, 0.5, 5.0, 50.0):
            assert comp(dx) == pytest.approx(pool.quote_out(Token("X"), dx))

    def test_identity(self):
        for t in (0.0, 1.0, 123.456):
            assert IDENTITY(t) == pytest.approx(t)

    def test_negative_input_rejected(self):
        comp = SwapComposition.from_hop(100.0, 200.0, 0.003)
        with pytest.raises(ValueError):
            comp(-1.0)
        with pytest.raises(ValueError):
            comp.derivative(-1.0)

    def test_derivative_matches_finite_difference(self):
        comp = compose_hops([(100, 200, 0.003), (300, 200, 0.003)])
        t, h = 17.0, 1e-6
        fd = (comp(t + h) - comp(t - h)) / (2 * h)
        assert comp.derivative(t) == pytest.approx(fd, rel=1e-6)

    def test_asymptote(self):
        comp = SwapComposition.from_hop(100.0, 200.0, 0.003)
        assert comp.asymptote == pytest.approx(200.0)
        assert comp(1e15) == pytest.approx(200.0, rel=1e-3)
        assert IDENTITY.asymptote == math.inf


class TestCompositionAlgebra:
    def test_composition_matches_sequential_hops(self, s5_loop):
        rotation = s5_loop.rotations()[0]
        comp = rotation.composition()
        for t in (0.1, 1.0, 10.0, 27.0, 100.0):
            assert comp(t) == pytest.approx(rotation.simulate(t)[-1], rel=1e-12)

    def test_then_associative(self):
        h1 = SwapComposition.from_hop(100, 200, 0.003)
        h2 = SwapComposition.from_hop(300, 200, 0.003)
        h3 = SwapComposition.from_hop(200, 400, 0.003)
        left = h1.then(h2).then(h3)
        right = h1.then(h2.then(h3))
        for t in (1.0, 10.0, 50.0):
            assert left(t) == pytest.approx(right(t), rel=1e-12)

    def test_identity_is_unit(self):
        h = SwapComposition.from_hop(100, 200, 0.003)
        for t in (1.0, 10.0):
            assert IDENTITY.then(h)(t) == pytest.approx(h(t))
            assert h.then(IDENTITY)(t) == pytest.approx(h(t))

    def test_compose_hops_empty_is_identity(self):
        comp = compose_hops([])
        assert comp(5.0) == pytest.approx(5.0)


class TestArbitrageAnalytics:
    def test_rate_at_zero_is_spot_product(self, s5_loop):
        comp = s5_loop.composition()
        expected = 1.0
        rotation = s5_loop.rotations()[0]
        for token_in, _out, pool in rotation.hops():
            expected *= pool.spot_price(token_in)
        assert comp.rate_at_zero == pytest.approx(expected)

    def test_section5_rate(self, s5_loop):
        # 8/3 before fees, times 0.997^3
        assert s5_loop.composition().rate_at_zero == pytest.approx(
            (8.0 / 3.0) * 0.997**3
        )

    def test_profitable_flag(self, s5_loop, no_arb_loop):
        assert s5_loop.composition().is_profitable
        assert not no_arb_loop.composition().is_profitable

    def test_optimal_input_closed_form(self):
        comp = compose_hops(
            [(100, 200, 0.003), (300, 200, 0.003), (200, 400, 0.003)]
        )
        t_star = comp.optimal_input()
        expected = (math.sqrt(comp.a * comp.b) - comp.b) / comp.c
        assert t_star == pytest.approx(expected)

    def test_optimal_input_stationarity(self):
        comp = compose_hops(
            [(100, 200, 0.003), (300, 200, 0.003), (200, 400, 0.003)]
        )
        assert comp.derivative(comp.optimal_input()) == pytest.approx(1.0, rel=1e-12)

    def test_optimal_input_is_maximum(self):
        comp = compose_hops(
            [(100, 200, 0.003), (300, 200, 0.003), (200, 400, 0.003)]
        )
        t_star = comp.optimal_input()
        p_star = comp.profit(t_star)
        for offset in (-1.0, -0.1, 0.1, 1.0):
            assert comp.profit(t_star + offset) < p_star

    def test_unprofitable_optimum_is_zero(self, no_arb_loop):
        comp = no_arb_loop.composition()
        assert comp.optimal_input() == 0.0
        assert comp.optimal_profit() == 0.0

    def test_optimal_profit_formula(self):
        comp = compose_hops([(100, 200, 0.003), (300, 200, 0.003), (200, 400, 0.003)])
        expected = (math.sqrt(comp.a) - math.sqrt(comp.b)) ** 2 / comp.c
        assert comp.optimal_profit() == pytest.approx(expected)
        assert comp.optimal_profit() == pytest.approx(comp.profit(comp.optimal_input()))

    def test_profitable_zero_slippage_unbounded(self):
        comp = SwapComposition(a=2.0, b=1.0, c=0.0)
        with pytest.raises(ValueError, match="unbounded"):
            comp.optimal_input()

    def test_section5_optimal_input_matches_paper(self, s5_loop):
        # paper: input 27.0 X -> profit 16.8 X
        comp = s5_loop.composition()
        assert comp.optimal_input() == pytest.approx(27.0, abs=0.05)
        assert comp.optimal_profit() == pytest.approx(16.87, abs=0.01)
