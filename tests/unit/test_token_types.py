"""Unit tests for repro.core.types."""

from __future__ import annotations

import math

import pytest

from repro.core import MissingPriceError, PriceMap, ProfitVector, Token, TokenAmount


class TestToken:
    def test_identity_by_symbol(self):
        assert Token("WETH") == Token("WETH")
        assert hash(Token("WETH")) == hash(Token("WETH"))

    def test_metadata_does_not_affect_identity(self):
        assert Token("WETH", decimals=6) == Token("WETH", decimals=18)
        assert Token("WETH", address="0xabc") == Token("WETH")

    def test_distinct_symbols_differ(self):
        assert Token("WETH") != Token("USDC")

    def test_ordering_by_symbol(self):
        assert Token("AAA") < Token("BBB")
        assert sorted([Token("Z"), Token("A")]) == [Token("A"), Token("Z")]

    def test_empty_symbol_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Token("")

    def test_negative_decimals_rejected(self):
        with pytest.raises(ValueError, match="decimals"):
            Token("X", decimals=-1)

    def test_str_and_repr(self):
        assert str(Token("WETH")) == "WETH"
        assert "WETH" in repr(Token("WETH"))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Token("X").symbol = "Y"  # type: ignore[misc]

    def test_usable_in_sets_and_dicts(self):
        s = {Token("A"), Token("A"), Token("B")}
        assert len(s) == 2


class TestTokenAmount:
    def test_addition_same_token(self):
        a = TokenAmount(Token("X"), 1.5)
        b = TokenAmount(Token("X"), 2.5)
        assert (a + b).amount == pytest.approx(4.0)

    def test_subtraction_same_token(self):
        a = TokenAmount(Token("X"), 5.0)
        b = TokenAmount(Token("X"), 2.0)
        assert (a - b).amount == pytest.approx(3.0)

    def test_mixing_tokens_rejected(self):
        with pytest.raises(ValueError, match="cannot combine"):
            TokenAmount(Token("X"), 1.0) + TokenAmount(Token("Y"), 1.0)

    def test_scalar_multiplication_both_sides(self):
        a = TokenAmount(Token("X"), 3.0)
        assert (a * 2).amount == pytest.approx(6.0)
        assert (2 * a).amount == pytest.approx(6.0)

    def test_negation(self):
        assert (-TokenAmount(Token("X"), 3.0)).amount == pytest.approx(-3.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            TokenAmount(Token("X"), math.nan)
        with pytest.raises(ValueError, match="finite"):
            TokenAmount(Token("X"), math.inf)

    def test_str(self):
        assert str(TokenAmount(Token("X"), 2.5)) == "2.5 X"


class TestPriceMap:
    def test_lookup(self):
        prices = PriceMap({Token("X"): 2.0})
        assert prices[Token("X")] == 2.0
        assert prices.price_of(Token("X")) == 2.0

    def test_missing_price_error(self):
        prices = PriceMap({Token("X"): 2.0})
        with pytest.raises(MissingPriceError, match="'Y'"):
            prices[Token("Y")]

    def test_from_symbols(self):
        prices = PriceMap.from_symbols({"X": 1.0, "Y": 2.0})
        assert prices[Token("Y")] == 2.0
        assert len(prices) == 2

    def test_mapping_protocol(self):
        prices = PriceMap.from_symbols({"A": 1.0, "B": 2.0})
        assert set(prices) == {Token("A"), Token("B")}
        assert Token("A") in prices
        assert dict(prices.items())[Token("B")] == 2.0

    def test_rejects_negative_price(self):
        with pytest.raises(ValueError, match="finite and >= 0"):
            PriceMap({Token("X"): -1.0})

    def test_rejects_nan_price(self):
        with pytest.raises(ValueError, match="finite"):
            PriceMap({Token("X"): math.nan})

    def test_rejects_non_token_keys(self):
        with pytest.raises(TypeError, match="keys must be Token"):
            PriceMap({"X": 1.0})  # type: ignore[dict-item]

    def test_zero_price_allowed(self):
        # Fig. 2's sweep starts at Px = 0.
        assert PriceMap({Token("X"): 0.0})[Token("X")] == 0.0

    def test_with_price_is_a_copy(self):
        original = PriceMap.from_symbols({"X": 1.0})
        updated = original.with_price(Token("X"), 9.0)
        assert original[Token("X")] == 1.0
        assert updated[Token("X")] == 9.0

    def test_max_price_token(self):
        prices = PriceMap.from_symbols({"A": 1.0, "B": 3.0, "C": 2.0})
        assert prices.max_price_token([Token("A"), Token("B"), Token("C")]) == Token("B")

    def test_max_price_token_tie_breaks_by_symbol(self):
        prices = PriceMap.from_symbols({"B": 3.0, "A": 3.0})
        assert prices.max_price_token([Token("B"), Token("A")]) == Token("A")

    def test_max_price_token_empty_candidates(self):
        prices = PriceMap.from_symbols({"A": 1.0})
        with pytest.raises(ValueError, match="non-empty"):
            prices.max_price_token([])


class TestProfitVector:
    def test_monetize(self):
        prices = PriceMap.from_symbols({"X": 2.0, "Y": 10.0})
        profit = ProfitVector.from_mapping({Token("X"): 3.0, Token("Y"): 1.0})
        assert profit.monetize(prices) == pytest.approx(16.0)

    def test_single(self):
        profit = ProfitVector.single(Token("X"), 5.0)
        assert profit.as_mapping() == {Token("X"): 5.0}

    def test_zero(self):
        prices = PriceMap.from_symbols({"X": 2.0})
        assert ProfitVector.zero().monetize(prices) == 0.0
        assert str(ProfitVector.zero()) == "<no profit>"

    def test_nonzero_filters_small_components(self):
        profit = ProfitVector.from_mapping({Token("X"): 1e-15, Token("Y"): 1.0})
        cleaned = profit.nonzero(tol=1e-12)
        assert cleaned.as_mapping() == {Token("Y"): 1.0}

    def test_components_sorted_by_symbol(self):
        profit = ProfitVector.from_mapping({Token("Z"): 1.0, Token("A"): 2.0})
        assert [ta.token.symbol for ta in profit.amounts] == ["A", "Z"]

    def test_monetize_missing_price_raises(self):
        profit = ProfitVector.single(Token("Q"), 1.0)
        with pytest.raises(MissingPriceError):
            profit.monetize(PriceMap.from_symbols({"X": 1.0}))

    def test_str_lists_components(self):
        profit = ProfitVector.from_mapping({Token("X"): 1.5, Token("Y"): 2.0})
        assert "1.5 X" in str(profit) and "2 Y" in str(profit)
