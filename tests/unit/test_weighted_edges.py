"""Edge-case tests for weighted pools and the chain optimizer."""

from __future__ import annotations

import pytest

from repro.amm import WeightedPool
from repro.core import Token, UnknownTokenError
from repro.data import synthetic_loop
from repro.optimize import chain_rate, optimize_rotation_chain

X, Y = Token("X"), Token("Y")


class TestWeightedPoolEdges:
    def test_unknown_token_errors(self):
        pool = WeightedPool(X, Y, 100.0, 200.0)
        q = Token("Q")
        with pytest.raises(UnknownTokenError):
            pool.other(q)
        with pytest.raises(UnknownTokenError):
            pool.reserve_of(q)
        with pytest.raises(UnknownTokenError):
            pool.weight_of(q)

    def test_negative_input_rejected(self):
        pool = WeightedPool(X, Y, 100.0, 200.0)
        with pytest.raises(ValueError, match=">= 0"):
            pool.quote_out(X, -1.0)
        with pytest.raises(ValueError, match=">= 0"):
            pool.marginal_rate(X, -1.0)

    def test_zero_input_zero_output(self):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=0.7, weight1=0.3)
        assert pool.quote_out(X, 0.0) == 0.0

    def test_snapshot_restore_roundtrip(self):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=0.7, weight1=0.3, pool_id="wsr")
        snap = pool.snapshot()
        pool.swap(X, 25.0)
        pool.restore(snap)
        assert pool.reserve_of(X) == 100.0
        assert pool.reserve_of(Y) == 200.0

    def test_restore_wrong_pool_rejected(self):
        a = WeightedPool(X, Y, 100.0, 200.0, pool_id="wa")
        b = WeightedPool(X, Y, 100.0, 200.0, pool_id="wb")
        with pytest.raises(ValueError, match="cannot restore"):
            a.restore(b.snapshot())

    def test_copy_independent(self):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=0.7, weight1=0.3, pool_id="wc")
        clone = pool.copy()
        clone.swap(X, 10.0)
        assert pool.reserve_of(X) == 100.0
        assert clone.weight_of(X) == 0.7

    def test_repr_mentions_weights(self):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=0.8, weight1=0.2)
        assert "@0.8" in repr(pool)

    def test_auto_pool_ids_unique(self):
        a = WeightedPool(X, Y, 1.0, 1.0)
        b = WeightedPool(X, Y, 1.0, 1.0)
        assert a.pool_id != b.pool_id


class TestChainOptimizerEdges:
    def test_unprofitable_loop_returns_zero(self):
        loop = synthetic_loop(3, edge_rate=0.95, jitter=0.0)
        result = optimize_rotation_chain(loop.rotations()[0])
        assert result.x == 0.0
        assert result.value == 0.0

    def test_chain_rate_decreasing(self):
        loop = synthetic_loop(4, seed=2)
        rotation = loop.rotations()[0]
        rates = [chain_rate(rotation, t) for t in (0.0, 10.0, 1000.0, 1e5)]
        assert rates == sorted(rates, reverse=True)

    def test_long_loop(self):
        loop = synthetic_loop(12, seed=5)
        result = optimize_rotation_chain(loop.rotations()[0])
        assert result.x > 0
        assert result.converged
