"""Unit + property tests for optimal order splitting (KKT water-filling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import amount_out
from repro.optimize import (
    AffineConstraint,
    ConvexProgram,
    HopConstraint,
    optimal_split,
    solve_slsqp,
)


class TestBasics:
    def test_identical_pools_split_equally(self):
        pools = [(1000.0, 2000.0, 0.003)] * 4
        result = optimal_split(pools, 100.0)
        assert np.allclose(result.allocations, 25.0, rtol=1e-9)
        assert sum(result.allocations) == pytest.approx(100.0)

    def test_single_pool_gets_everything(self):
        result = optimal_split([(1000.0, 2000.0, 0.003)], 50.0)
        assert result.allocations == (50.0,)
        assert result.total_out == pytest.approx(
            amount_out(1000.0, 2000.0, 50.0, 0.003)
        )

    def test_dominated_pool_unused_for_small_trades(self):
        # second pool's spot rate is half the first's: tiny trades
        # should use only the better pool
        pools = [(1000.0, 2000.0, 0.003), (1000.0, 1000.0, 0.003)]
        result = optimal_split(pools, 0.5)
        assert result.allocations[1] == 0.0
        assert result.allocations[0] == pytest.approx(0.5)

    def test_large_trades_recruit_worse_pools(self):
        pools = [(1000.0, 2000.0, 0.003), (1000.0, 1000.0, 0.003)]
        result = optimal_split(pools, 2000.0)
        assert result.allocations[1] > 0.0

    def test_zero_input(self):
        result = optimal_split([(1000.0, 2000.0, 0.003)], 0.0)
        assert result.allocations == (0.0,)
        assert result.total_out == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            optimal_split([], 1.0)
        with pytest.raises(ValueError, match=">= 0"):
            optimal_split([(1.0, 1.0, 0.003)], -1.0)
        with pytest.raises(ValueError, match="reserves"):
            optimal_split([(0.0, 1.0, 0.003)], 1.0)
        with pytest.raises(ValueError, match="fee"):
            optimal_split([(1.0, 1.0, 1.0)], 1.0)

    def test_marginal_rates_equalized_on_active_pools(self):
        pools = [(1000.0, 2000.0, 0.003), (500.0, 800.0, 0.003), (2000.0, 3000.0, 0.0)]
        result = optimal_split(pools, 300.0)
        from repro.amm import marginal_rate

        rates = [
            marginal_rate(x, y, t, fee)
            for (x, y, fee), t in zip(pools, result.allocations)
            if t > 0
        ]
        assert len(rates) >= 2
        for rate in rates:
            assert rate == pytest.approx(result.marginal_rate, rel=1e-9)


class TestAgainstSlsqp:
    @pytest.mark.parametrize("total", [1.0, 50.0, 500.0])
    def test_matches_general_solver(self, total):
        pools = [(1000.0, 2100.0, 0.003), (700.0, 1300.0, 0.003), (1500.0, 2900.0, 0.01)]
        exact = optimal_split(pools, total)

        # general convex program: vars (t_i, o_i) per pool
        n = len(pools)
        objective = np.zeros(2 * n)
        objective[1::2] = 1.0
        inequalities = [
            HopConstraint(
                x=x, y=y, gamma=1.0 - fee, idx_in=2 * i, idx_out=2 * i + 1, n_vars=2 * n
            )
            for i, (x, y, fee) in enumerate(pools)
        ]
        budget = np.zeros(2 * n)
        budget[0::2] = -1.0
        inequalities.append(AffineConstraint(coeffs=budget, offset=total))
        program = ConvexProgram(
            n_vars=2 * n, objective=objective, inequalities=inequalities
        )
        x0 = np.full(2 * n, total / (2 * n))
        solved = solve_slsqp(program, initial_point=x0)
        assert exact.total_out == pytest.approx(solved.objective, rel=1e-6)


@st.composite
def pool_lists(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    return [
        (
            draw(st.floats(min_value=10.0, max_value=1e6)),
            draw(st.floats(min_value=10.0, max_value=1e6)),
            draw(st.sampled_from([0.0, 0.003, 0.01])),
        )
        for _ in range(k)
    ]


class TestProperties:
    @given(pools=pool_lists(), total=st.floats(min_value=0.01, max_value=1e5))
    @settings(max_examples=100)
    def test_allocations_feasible(self, pools, total):
        result = optimal_split(pools, total)
        assert all(t >= 0 for t in result.allocations)
        assert sum(result.allocations) == pytest.approx(total, rel=1e-9)

    @given(pools=pool_lists(), total=st.floats(min_value=0.01, max_value=1e5))
    @settings(max_examples=100)
    def test_beats_best_single_pool(self, pools, total):
        result = optimal_split(pools, total)
        best_single = max(amount_out(x, y, total, fee) for x, y, fee in pools)
        assert result.total_out >= best_single * (1.0 - 1e-9)

    @given(
        pools=pool_lists(),
        total=st.floats(min_value=1.0, max_value=1e4),
        shift=st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=60)
    def test_local_perturbation_never_improves(self, pools, total, shift):
        """Moving mass between two pools never beats the optimum."""
        result = optimal_split(pools, total)
        if len(pools) < 2:
            return
        alloc = list(result.allocations)
        donor = max(range(len(alloc)), key=lambda i: alloc[i])
        receiver = (donor + 1) % len(alloc)
        moved = alloc[donor] * shift
        alloc[donor] -= moved
        alloc[receiver] += moved
        perturbed = sum(
            amount_out(x, y, t, fee) if t > 0 else 0.0
            for (x, y, fee), t in zip(pools, alloc)
        )
        assert perturbed <= result.total_out * (1.0 + 1e-9)
