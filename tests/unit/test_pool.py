"""Unit tests for the stateful Pool."""

from __future__ import annotations

import pytest

from repro.amm import DEFAULT_FEE, Pool
from repro.core import (
    InvalidReserveError,
    Token,
    UnknownTokenError,
)

X, Y = Token("X"), Token("Y")


@pytest.fixture
def pool():
    return Pool(X, Y, 100.0, 200.0, pool_id="t-xy")


class TestConstruction:
    def test_tokens_normalized_by_symbol(self):
        pool = Pool(Y, X, 200.0, 100.0)
        assert pool.token0 == X
        assert pool.reserve_of(X) == 100.0
        assert pool.reserve_of(Y) == 200.0

    def test_same_token_twice_rejected(self):
        with pytest.raises(InvalidReserveError, match="distinct"):
            Pool(X, X, 100.0, 100.0)

    def test_nonpositive_reserves_rejected(self):
        with pytest.raises(InvalidReserveError):
            Pool(X, Y, 0.0, 100.0)
        with pytest.raises(InvalidReserveError):
            Pool(X, Y, 100.0, -1.0)

    def test_default_fee(self, pool):
        assert pool.fee == DEFAULT_FEE == 0.003

    def test_auto_pool_ids_unique(self):
        a = Pool(X, Y, 1.0, 1.0)
        b = Pool(X, Y, 1.0, 1.0)
        assert a.pool_id != b.pool_id

    def test_contains(self, pool):
        assert X in pool and Y in pool
        assert Token("Q") not in pool

    def test_other(self, pool):
        assert pool.other(X) == Y
        assert pool.other(Y) == X
        with pytest.raises(UnknownTokenError):
            pool.other(Token("Q"))

    def test_reserve_of_unknown_token(self, pool):
        with pytest.raises(UnknownTokenError):
            pool.reserve_of(Token("Q"))

    def test_k(self, pool):
        assert pool.k == pytest.approx(20_000.0)


class TestQuotes:
    def test_quote_does_not_mutate(self, pool):
        before = (pool.reserve_of(X), pool.reserve_of(Y))
        pool.quote_out(X, 10.0)
        pool.quote_in(Y, 10.0)
        pool.spot_price(X)
        assert (pool.reserve_of(X), pool.reserve_of(Y)) == before

    def test_quote_out_in_roundtrip(self, pool):
        out = pool.quote_out(X, 10.0)
        assert pool.quote_in(Y, out) == pytest.approx(10.0, rel=1e-12)

    def test_spot_price_direction(self, pool):
        # X is scarce, so X is worth ~2 Y
        assert pool.spot_price(X) == pytest.approx(0.997 * 2.0)
        assert pool.spot_price(Y) == pytest.approx(0.997 * 0.5)

    def test_marginal_rate_at_zero_equals_spot(self, pool):
        assert pool.marginal_rate(X, 0.0) == pytest.approx(pool.spot_price(X))


class TestSwap:
    def test_swap_mutates_reserves(self, pool):
        out = pool.swap(X, 10.0)
        assert pool.reserve_of(X) == pytest.approx(110.0)
        assert pool.reserve_of(Y) == pytest.approx(200.0 - out)

    def test_swap_returns_quote(self, pool):
        quote = pool.quote_out(X, 10.0)
        assert pool.swap(X, 10.0) == pytest.approx(quote)

    def test_k_never_decreases_with_fee(self, pool):
        k0 = pool.k
        pool.swap(X, 10.0)
        k1 = pool.k
        pool.swap(Y, 5.0)
        k2 = pool.k
        assert k1 >= k0 * (1 - 1e-12)
        assert k2 >= k1 * (1 - 1e-12)
        # With a positive fee k strictly grows.
        assert k1 > k0

    def test_swap_records_event(self, pool):
        pool.swap(X, 10.0)
        assert len(pool.events) == 1
        event = pool.events[0]
        assert event.token_in == X
        assert event.token_out == Y
        assert event.amount_in == 10.0
        assert event.pool_id == "t-xy"
        assert "X" in str(event)

    def test_sequential_swaps_use_updated_state(self, pool):
        out1 = pool.swap(X, 10.0)
        out2 = pool.swap(X, 10.0)
        assert out2 < out1  # slippage: second trade gets a worse price


class TestSnapshotRestore:
    def test_restore_roundtrip(self, pool):
        snap = pool.snapshot()
        pool.swap(X, 25.0)
        pool.restore(snap)
        assert pool.reserve_of(X) == 100.0
        assert pool.reserve_of(Y) == 200.0

    def test_restore_wrong_pool_rejected(self, pool):
        other = Pool(X, Y, 1.0, 1.0, pool_id="other")
        with pytest.raises(ValueError, match="cannot restore"):
            pool.restore(other.snapshot())

    def test_from_snapshot_recreates_pool(self, pool):
        clone = Pool.from_snapshot(pool.snapshot())
        assert clone.pool_id == pool.pool_id
        assert clone.reserve_of(X) == pool.reserve_of(X)
        assert clone.fee == pool.fee

    def test_copy_is_independent(self, pool):
        clone = pool.copy()
        clone.swap(X, 10.0)
        assert pool.reserve_of(X) == 100.0

    def test_snapshot_tvl(self, pool, simple_prices):
        snap = pool.snapshot()
        # 100 X * 2$ + 200 Y * 10.2$
        assert snap.tvl(simple_prices) == pytest.approx(100 * 2 + 200 * 10.2)
        assert pool.tvl(simple_prices) == pytest.approx(snap.tvl(simple_prices))


class TestSnapshotTvlDirect:
    """Direct unit coverage for ``PoolSnapshot.tvl`` — a proper
    ``Mapping[Token, float]`` parameter, not a duck-typed object."""

    def test_exact_value_with_plain_dict(self, pool):
        snap = pool.snapshot()
        prices = {X: 3.0, Y: 0.5}
        assert snap.tvl(prices) == 100.0 * 3.0 + 200.0 * 0.5

    def test_accepts_price_map(self, pool):
        from repro.core import PriceMap

        snap = pool.snapshot()
        prices = PriceMap({X: 1.25, Y: 4.0})
        assert snap.tvl(prices) == 100.0 * 1.25 + 200.0 * 4.0
        assert snap.tvl(prices) == pool.tvl(prices)

    def test_missing_token_surfaces_mapping_error(self, pool):
        from repro.core import MissingPriceError, PriceMap

        snap = pool.snapshot()
        with pytest.raises(KeyError):
            snap.tvl({X: 3.0})
        with pytest.raises(MissingPriceError):
            snap.tvl(PriceMap({X: 3.0}))

    def test_zero_price_zeroes_that_side(self, pool):
        snap = pool.snapshot()
        assert snap.tvl({X: 0.0, Y: 2.0}) == 400.0


class TestRepr:
    def test_repr_mentions_reserves_and_tokens(self, pool):
        text = repr(pool)
        assert "100" in text and "200" in text
        assert "X" in text and "Y" in text
