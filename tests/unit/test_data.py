"""Unit tests for snapshots, the synthetic generator, and loop fixtures."""

from __future__ import annotations

import pytest

from repro.core import SnapshotFormatError, Token
from repro.data import (
    MarketSnapshot,
    SyntheticMarketGenerator,
    paper_market,
    section5_loop,
    section5_snapshot,
    synthetic_loop,
    synthetic_loop_prices,
)


class TestSection5Fixture:
    def test_loop_structure(self):
        loop = section5_loop()
        assert [t.symbol for t in loop.tokens] == ["X", "Y", "Z"]
        assert loop.is_arbitrage()

    def test_fresh_pools_each_call(self):
        a, b = section5_loop(), section5_loop()
        a.pools[0].swap(Token("X"), 10.0)
        assert b.pools[0].reserve_of(Token("X")) == 100.0

    def test_snapshot_contents(self):
        snap = section5_snapshot()
        assert len(snap.registry) == 3
        assert snap.prices[Token("Z")] == 20.0
        assert snap.label == "section5-example"

    def test_custom_fee_and_px(self):
        snap = section5_snapshot(fee=0.0, px=15.0)
        assert snap.prices[Token("X")] == 15.0
        assert next(iter(snap.registry)).fee == 0.0


class TestSerialization:
    def test_json_roundtrip(self):
        snap = section5_snapshot()
        restored = MarketSnapshot.from_json(snap.to_json())
        assert len(restored.registry) == len(snap.registry)
        assert dict(restored.prices) == dict(snap.prices)
        assert restored.label == snap.label
        for pool in snap.registry:
            twin = restored.registry[pool.pool_id]
            assert twin.reserve_of(pool.token0) == pool.reserve_of(pool.token0)
            assert twin.fee == pool.fee

    def test_save_load(self, tmp_path):
        snap = section5_snapshot()
        path = snap.save(tmp_path / "snap.json")
        restored = MarketSnapshot.load(path)
        assert dict(restored.prices) == dict(snap.prices)

    def test_invalid_json(self):
        with pytest.raises(SnapshotFormatError, match="invalid JSON"):
            MarketSnapshot.from_json("{not json")

    def test_wrong_version(self):
        data = section5_snapshot().to_dict()
        data["version"] = 99
        with pytest.raises(SnapshotFormatError, match="version"):
            MarketSnapshot.from_dict(data)

    def test_missing_key(self):
        data = section5_snapshot().to_dict()
        del data["pools"]
        with pytest.raises(SnapshotFormatError, match="malformed"):
            MarketSnapshot.from_dict(data)

    def test_copy_independent(self):
        snap = section5_snapshot()
        clone = snap.copy()
        clone.registry["s5-xy"].swap(Token("X"), 10.0)
        assert snap.registry["s5-xy"].reserve_of(Token("X")) == 100.0


class TestSyntheticMarket:
    def test_paper_scale(self, default_market):
        graph = default_market.graph()
        assert graph.number_of_nodes() == 51
        assert graph.number_of_edges() == 208

    def test_every_pool_passes_paper_filters(self, default_market):
        # by construction: filtered and unfiltered graphs coincide
        filtered = default_market.graph(apply_paper_filters=True)
        raw = default_market.graph(apply_paper_filters=False)
        assert filtered.number_of_edges() == raw.number_of_edges()

    def test_deterministic_per_seed(self):
        a = paper_market(seed=5)
        b = paper_market(seed=5)
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        assert paper_market(seed=5).to_json() != paper_market(seed=6).to_json()

    def test_connected(self, default_market):
        import networkx as nx

        graph = default_market.graph(apply_paper_filters=False)
        assert nx.is_connected(nx.Graph(graph))

    def test_zero_noise_market_has_no_arbitrage(self):
        from repro.graph import find_arbitrage_loops

        snap = SyntheticMarketGenerator(
            n_tokens=12, n_pools=30, price_noise=0.0, seed=3
        ).generate()
        assert find_arbitrage_loops(snap.graph(), 3) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match=">= 3 tokens"):
            SyntheticMarketGenerator(n_tokens=2)
        with pytest.raises(ValueError, match="cannot connect"):
            SyntheticMarketGenerator(n_tokens=10, n_pools=5)
        with pytest.raises(ValueError, match="price_noise"):
            SyntheticMarketGenerator(price_noise=-0.1)

    def test_metadata_recorded(self, default_market):
        assert default_market.metadata["generator"] == "SyntheticMarketGenerator"
        assert default_market.metadata["n_pools"] == 208

    def test_serialization_roundtrip(self, default_market):
        restored = MarketSnapshot.from_json(default_market.to_json())
        assert len(restored.registry) == 208
        assert restored.graph().number_of_nodes() == 51


class TestSyntheticLoop:
    def test_profitable_for_all_lengths(self):
        for length in (2, 3, 5, 10):
            loop = synthetic_loop(length)
            assert len(loop) == length
            assert loop.is_arbitrage(), f"length {length} not profitable"

    def test_deterministic(self):
        a = synthetic_loop(5, seed=9)
        b = synthetic_loop(5, seed=9)
        assert a.composition().rate_at_zero == b.composition().rate_at_zero

    def test_length_validation(self):
        with pytest.raises(ValueError, match="length >= 2"):
            synthetic_loop(1)

    def test_edge_rate_validation(self):
        with pytest.raises(ValueError, match="edge_rate"):
            synthetic_loop(3, edge_rate=0.0)

    def test_unprofitable_rate(self):
        loop = synthetic_loop(3, edge_rate=0.9, jitter=0.0)
        assert not loop.is_arbitrage()

    def test_prices_cover_loop(self):
        loop = synthetic_loop(4)
        prices = synthetic_loop_prices(loop)
        for token in loop.tokens:
            assert prices[token] > 0
