"""Tests for weighted (G3M) pools and the generic chain-rule optimizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import Pool, WeightedPool
from repro.core import ArbitrageLoop, InvalidReserveError, PriceMap, Token
from repro.optimize import chain_rate, optimize_rotation_chain
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    TraditionalStrategy,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")


def weighted_loop(w: float = 0.8) -> ArbitrageLoop:
    """A profitable 3-loop with one 80/20 weighted hop."""
    pools = [
        WeightedPool(X, Y, 100.0, 200.0, weight0=w, weight1=1.0 - w, pool_id="w-xy"),
        Pool(Y, Z, 300.0, 200.0, pool_id="w-yz"),
        Pool(Z, X, 200.0, 400.0, pool_id="w-zx"),
    ]
    return ArbitrageLoop([X, Y, Z], pools)


@pytest.fixture
def prices():
    return PriceMap({X: 2.0, Y: 10.2, Z: 20.0})


class TestWeightedPool:
    def test_equal_weights_match_cpmm(self):
        wp = WeightedPool(X, Y, 100.0, 200.0, weight0=0.5, weight1=0.5)
        cp = Pool(X, Y, 100.0, 200.0)
        for dx in (0.1, 1.0, 10.0, 50.0):
            assert wp.quote_out(X, dx) == pytest.approx(cp.quote_out(X, dx), rel=1e-12)
        assert wp.spot_price(X) == pytest.approx(cp.spot_price(X), rel=1e-12)
        assert wp.marginal_rate(X, 5.0) == pytest.approx(
            cp.marginal_rate(X, 5.0), rel=1e-12
        )

    def test_weights_shift_spot_price(self):
        heavy_x = WeightedPool(X, Y, 100.0, 200.0, weight0=0.8, weight1=0.2)
        balanced = WeightedPool(X, Y, 100.0, 200.0)
        # heavier input weight -> higher spot price of the input token
        assert heavy_x.spot_price(X) > balanced.spot_price(X)

    def test_marginal_rate_matches_finite_difference(self):
        pool = WeightedPool(X, Y, 150.0, 260.0, weight0=0.7, weight1=0.3)
        t, h = 13.0, 1e-6
        fd = (pool.quote_out(X, t + h) - pool.quote_out(X, t - h)) / (2 * h)
        assert pool.marginal_rate(X, t) == pytest.approx(fd, rel=1e-6)

    def test_swap_mutates_and_logs(self):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=0.6, weight1=0.4)
        out = pool.swap(X, 10.0)
        assert pool.reserve_of(X) == pytest.approx(110.0)
        assert pool.reserve_of(Y) == pytest.approx(200.0 - out)
        assert len(pool.events) == 1

    def test_invariant_preserved(self):
        w0, w1 = 0.6, 0.4
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=w0, weight1=w1, fee=0.0)
        inv_before = pool.reserve_of(X) ** w0 * pool.reserve_of(Y) ** w1
        pool.swap(X, 25.0)
        inv_after = pool.reserve_of(X) ** w0 * pool.reserve_of(Y) ** w1
        assert inv_after == pytest.approx(inv_before, rel=1e-12)

    def test_fee_grows_invariant(self):
        w0, w1 = 0.6, 0.4
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=w0, weight1=w1, fee=0.003)
        inv_before = pool.reserve_of(X) ** w0 * pool.reserve_of(Y) ** w1
        pool.swap(X, 25.0)
        inv_after = pool.reserve_of(X) ** w0 * pool.reserve_of(Y) ** w1
        assert inv_after > inv_before

    def test_validation(self):
        with pytest.raises(InvalidReserveError, match="weights"):
            WeightedPool(X, Y, 1.0, 1.0, weight0=0.0, weight1=1.0)
        with pytest.raises(InvalidReserveError, match="distinct"):
            WeightedPool(X, X, 1.0, 1.0)

    def test_normalization_swaps_weights(self):
        pool = WeightedPool(Y, X, 200.0, 100.0, weight0=0.2, weight1=0.8)
        assert pool.token0 == X
        assert pool.weight_of(X) == 0.8
        assert pool.reserve_of(X) == 100.0

    def test_not_constant_product(self):
        assert WeightedPool(X, Y, 1.0, 1.0).is_constant_product is False
        assert Pool(X, Y, 1.0, 1.0).is_constant_product is True

    def test_overflow_magnitudes_fail_loudly(self):
        """`pinned_pow` keeps `**`'s overflow contract: absurd reserve
        magnitudes raise OverflowError instead of quoting silent NaNs."""
        pool = WeightedPool(X, Y, 1e40, 1e40, weight0=0.9, weight1=0.1)
        with pytest.raises(OverflowError):
            pool.marginal_rate(X, 1.0)


class TestChainOptimizer:
    def test_matches_closed_form_on_cpmm_loop(self, s5_loop):
        from repro.optimize import optimize_rotation

        rotation = s5_loop.rotations()[0]
        chain = optimize_rotation_chain(rotation)
        exact = optimize_rotation(rotation)
        assert chain.x == pytest.approx(exact.x, rel=1e-8)
        assert chain.value == pytest.approx(exact.value, rel=1e-8)

    def test_chain_rate_at_zero_is_spot_product(self):
        loop = weighted_loop()
        rotation = loop.rotations()[0]
        expected = 1.0
        for token_in, _out, pool in rotation.hops():
            expected *= pool.spot_price(token_in)
        assert chain_rate(rotation, 0.0) == pytest.approx(expected, rel=1e-12)

    def test_weighted_optimum_is_stationary(self):
        loop = weighted_loop()
        rotation = loop.rotations()[0]
        result = optimize_rotation_chain(rotation)
        assert result.x > 0
        assert chain_rate(rotation, result.x) == pytest.approx(1.0, rel=1e-6)
        # and it is a maximum of the simulated profit
        def profit(t):
            return rotation.simulate(t)[-1] - t
        assert profit(result.x) >= profit(result.x * 0.9)
        assert profit(result.x) >= profit(result.x * 1.1)

    def test_composition_refuses_weighted(self):
        loop = weighted_loop()
        with pytest.raises(TypeError, match="constant-product"):
            loop.rotations()[0].composition()


class TestStrategiesOnWeightedLoops:
    def test_traditional_works(self, prices):
        loop = weighted_loop()
        result = TraditionalStrategy(start_token=X).evaluate(loop, prices)
        assert result.monetized_profit > 0
        # hop amounts replay exactly
        sim = loop.rotation_from(X).simulate(result.amount_in)
        assert result.hop_amounts[-1][1] == pytest.approx(sim[-1], rel=1e-9)

    def test_maxmax_dominates_rotations(self, prices):
        loop = weighted_loop()
        mm = MaxMaxStrategy().evaluate(loop, prices)
        for token in loop.tokens:
            trad = TraditionalStrategy(start_token=token).evaluate(loop, prices)
            assert mm.monetized_profit >= trad.monetized_profit - 1e-9

    @pytest.mark.parametrize("backend", ["barrier", "slsqp"])
    def test_convex_dominates_maxmax(self, prices, backend):
        loop = weighted_loop()
        mm = MaxMaxStrategy().evaluate(loop, prices)
        cv = ConvexOptimizationStrategy(backend=backend).evaluate(loop, prices)
        assert cv.monetized_profit >= mm.monetized_profit - 1e-6

    def test_backends_agree(self, prices):
        loop = weighted_loop()
        barrier = ConvexOptimizationStrategy(backend="barrier").evaluate(loop, prices)
        slsqp = ConvexOptimizationStrategy(backend="slsqp").evaluate(loop, prices)
        assert barrier.monetized_profit == pytest.approx(
            slsqp.monetized_profit, rel=1e-4
        )

    def test_execution_realizes_weighted_profit(self, prices):
        from repro.amm import PoolRegistry
        from repro.execution import ExecutionSimulator, plan_from_result

        loop = weighted_loop()
        result = MaxMaxStrategy().evaluate(loop, prices)
        # WeightedPool satisfies the duck interface the registry and
        # simulator need (tokens, snapshot/restore, swap).
        registry = PoolRegistry(loop.pools)
        receipt = ExecutionSimulator(registry=registry).execute(
            plan_from_result(result, slippage_tolerance=1e-9)
        )
        assert not receipt.reverted
        assert receipt.monetized(prices) == pytest.approx(
            result.monetized_profit, rel=1e-6
        )


class TestWeightedProperties:
    @given(
        w=st.floats(min_value=0.1, max_value=0.9),
        dx=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_output_bounded_and_monotone(self, w, dx):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=w, weight1=1.0 - w)
        out = pool.quote_out(X, dx)
        assert 0 < out < 200.0
        assert pool.quote_out(X, dx * 2) > out

    @given(w=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30)
    def test_concavity(self, w):
        pool = WeightedPool(X, Y, 100.0, 200.0, weight0=w, weight1=1.0 - w)
        f = lambda t: pool.quote_out(X, t)
        mid = 0.5 * (f(10.0) + f(30.0))
        assert f(20.0) >= mid * (1.0 - 1e-12)
