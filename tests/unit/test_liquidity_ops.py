"""Unit tests for Pool.add_liquidity / remove_liquidity (V2 mint/burn)."""

from __future__ import annotations

import pytest

from repro.amm import Pool
from repro.core import InvalidReserveError, Token

X, Y = Token("X"), Token("Y")


@pytest.fixture
def pool():
    return Pool(X, Y, 100.0, 200.0, pool_id="lp-xy")


class TestAddLiquidity:
    def test_proportional_deposit(self, pool):
        pool.add_liquidity(10.0, 20.0)
        assert pool.reserve_of(X) == pytest.approx(110.0)
        assert pool.reserve_of(Y) == pytest.approx(220.0)

    def test_price_unchanged(self, pool):
        price = pool.spot_price(X)
        pool.add_liquidity(50.0, 100.0)
        assert pool.spot_price(X) == pytest.approx(price, rel=1e-12)

    def test_depth_reduces_slippage(self, pool):
        quote_before = pool.quote_out(X, 10.0)
        pool.add_liquidity(100.0, 200.0)
        quote_after = pool.quote_out(X, 10.0)
        assert quote_after > quote_before  # deeper pool, less slippage

    def test_ratio_mismatch_rejected(self, pool):
        with pytest.raises(InvalidReserveError, match="ratio"):
            pool.add_liquidity(10.0, 10.0)

    def test_nonpositive_rejected(self, pool):
        with pytest.raises(InvalidReserveError, match="positive"):
            pool.add_liquidity(0.0, 20.0)
        with pytest.raises(InvalidReserveError, match="positive"):
            pool.add_liquidity(10.0, -1.0)


class TestRemoveLiquidity:
    def test_proportional_withdrawal(self, pool):
        out0, out1 = pool.remove_liquidity(0.25)
        assert out0 == pytest.approx(25.0)
        assert out1 == pytest.approx(50.0)
        assert pool.reserve_of(X) == pytest.approx(75.0)
        assert pool.reserve_of(Y) == pytest.approx(150.0)

    def test_price_unchanged(self, pool):
        price = pool.spot_price(X)
        pool.remove_liquidity(0.5)
        assert pool.spot_price(X) == pytest.approx(price, rel=1e-12)

    def test_fraction_bounds(self, pool):
        with pytest.raises(InvalidReserveError, match="fraction"):
            pool.remove_liquidity(0.0)
        with pytest.raises(InvalidReserveError, match="fraction"):
            pool.remove_liquidity(1.0)
        with pytest.raises(InvalidReserveError, match="fraction"):
            pool.remove_liquidity(-0.5)

    def test_mint_burn_roundtrip(self, pool):
        pool.add_liquidity(100.0, 200.0)  # double the pool
        pool.remove_liquidity(0.5)  # halve it again
        assert pool.reserve_of(X) == pytest.approx(100.0)
        assert pool.reserve_of(Y) == pytest.approx(200.0)
