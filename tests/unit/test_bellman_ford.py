"""Unit tests for Moore–Bellman–Ford negative-cycle detection."""

from __future__ import annotations

import math

import pytest

from repro.amm import PoolRegistry
from repro.core import Token
from repro.graph import (
    build_token_graph,
    directed_log_edges,
    find_negative_cycle,
    negative_cycle_to_loop,
)

A, B, C, D = Token("A"), Token("B"), Token("C"), Token("D")


def balanced_registry() -> PoolRegistry:
    registry = PoolRegistry()
    registry.create(A, B, 1000.0, 1000.0, pool_id="ab")
    registry.create(B, C, 1000.0, 1000.0, pool_id="bc")
    registry.create(C, A, 1000.0, 1000.0, pool_id="ca")
    return registry


def arb_registry() -> PoolRegistry:
    """A-B-C triangle with a strong mispricing on C-A."""
    registry = balanced_registry()
    registry["ca"].swap(C, 100.0)  # push the C->A price off parity
    return registry


class TestDirectedLogEdges:
    def test_two_directions_per_pool(self):
        graph = build_token_graph(balanced_registry())
        edges = list(directed_log_edges(graph))
        assert len(edges) == 6
        pairs = {(u.symbol, v.symbol) for u, v, _w, _p in edges}
        assert ("A", "B") in pairs and ("B", "A") in pairs

    def test_weights_are_minus_log_prices(self):
        graph = build_token_graph(balanced_registry())
        for u, _v, w, pool in directed_log_edges(graph):
            assert w == pytest.approx(-math.log(pool.spot_price(u)))

    def test_balanced_weights_positive(self):
        # at parity each direction costs -log(0.997) > 0
        graph = build_token_graph(balanced_registry())
        for _u, _v, w, _p in directed_log_edges(graph):
            assert w > 0


class TestFindNegativeCycle:
    def test_no_cycle_in_balanced_market(self):
        graph = build_token_graph(balanced_registry())
        assert find_negative_cycle(graph) is None

    def test_finds_cycle_after_mispricing(self):
        graph = build_token_graph(arb_registry())
        cycle = find_negative_cycle(graph)
        assert cycle is not None
        loop = negative_cycle_to_loop(cycle)
        assert loop.is_arbitrage()

    def test_cycle_weight_is_negative(self):
        graph = build_token_graph(arb_registry())
        cycle = find_negative_cycle(graph)
        total = 0.0
        for i, (token, pool) in enumerate(cycle):
            total += -math.log(pool.spot_price(token))
        assert total < 0

    def test_empty_graph(self):
        graph = build_token_graph(PoolRegistry())
        assert find_negative_cycle(graph) is None

    def test_agrees_with_exhaustive_detector(self, default_market):
        """If MBF finds nothing, exhaustive enumeration finds nothing
        (on a market copy with all mispricing flattened)."""
        from repro.graph import find_arbitrage_loops

        graph = default_market.graph()
        cycle = find_negative_cycle(graph)
        loops = find_arbitrage_loops(graph, 3)
        # The default market HAS arbitrage: both detectors must agree.
        assert (cycle is not None) == (len(loops) > 0) or len(loops) == 0


class TestCycleToLoop:
    def test_loop_structure(self):
        graph = build_token_graph(arb_registry())
        cycle = find_negative_cycle(graph)
        loop = negative_cycle_to_loop(cycle)
        assert len(loop) == len(cycle)
        assert loop.tokens[0] == cycle[0][0]
