"""Unit tests for the batched lockstep solvers (:mod:`repro.market.solvers`).

The contract is *exact* replication of the scalar optimizers row by
row: same optimum bits, same iteration counts, same convergence
failures — the masked iteration must be observationally identical to
running the scalar solver once per row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amm.composition import SwapComposition
from repro.core.errors import SolverConvergenceError
from repro.market import (
    batched_golden_section,
    batched_maximize_by_derivative,
)
from repro.optimize.bisection import maximize_by_derivative
from repro.optimize.golden import golden_section_maximize


def _compositions(seed: int, count: int) -> list[SwapComposition]:
    """Random profitable-and-not linear-fractional round trips."""
    rng = np.random.default_rng(seed)
    comps = []
    for _ in range(count):
        b = float(rng.uniform(1e2, 1e6))
        # a/b spans both sides of 1 so zero-optimum rows mix in
        a = b * float(rng.uniform(0.9, 1.3))
        c = float(rng.uniform(0.5, 1.0))
        comps.append(SwapComposition(a=a, b=b, c=c))
    return comps


class TestBatchedBisection:
    def test_lockstep_matches_scalar_rows(self):
        comps = _compositions(11, 64)
        a = np.array([comp.a for comp in comps])
        b = np.array([comp.b for comp in comps])
        c = np.array([comp.c for comp in comps])
        hint = np.array(
            [max(comp.b * 1e-3, 1e-9) for comp in comps]
        )

        def rate(t: np.ndarray) -> np.ndarray:
            denom = b + c * t
            return a * b / (denom * denom)

        x, iterations = batched_maximize_by_derivative(rate, hint)
        assert (x[a <= b] == 0.0).all()
        assert (iterations[a <= b] == 0).all()
        for k, comp in enumerate(comps):
            ref = maximize_by_derivative(
                profit=comp.profit,
                rate=comp.derivative,
                initial_hi=float(hint[k]),
            )
            assert x[k] == ref.x, f"row {k}"
            assert iterations[k] == ref.iterations, f"row {k}"

    def test_all_zero_rows_short_circuit(self):
        def rate(t):
            return np.full(t.shape, 0.5)

        x, iterations = batched_maximize_by_derivative(rate, np.ones(5))
        assert (x == 0.0).all() and (iterations == 0).all()

    def test_unbracketable_rate_raises_like_scalar(self):
        def rate(t):
            return np.full(t.shape, 2.0)  # never drops below 1

        with pytest.raises(SolverConvergenceError, match="bracket"):
            batched_maximize_by_derivative(rate, np.ones(3))

    def test_max_iter_boundary_matches_scalar_exactly(self):
        """A row converging exactly at the iteration budget must raise
        (or return) precisely when the scalar while-guard would — the
        guard runs before the convergence check, never after."""

        def scalar_outcome(hint, max_iter):
            try:
                r = maximize_by_derivative(
                    lambda t: 0.0, lambda t: float("nan"),
                    initial_hi=hint, max_iter=max_iter,
                )
                return ("x", r.x, r.iterations)
            except SolverConvergenceError:
                return ("raise",)

        def batch_outcome(hint, max_iter):
            try:
                x, it = batched_maximize_by_derivative(
                    lambda t: np.full(t.shape, np.nan),
                    np.array([hint]),
                    max_iter=max_iter,
                )
                return ("x", float(x[0]), int(it[0]))
            except SolverConvergenceError:
                return ("raise",)

        # a NaN rate pins lo at 0 while hi halves, so the halving count
        # to convergence is set by the hint's magnitude; scanning
        # max_iter across that count crosses the exact boundary
        for hint in (1.0, 2.0**40):
            for max_iter in range(30, 120):
                assert scalar_outcome(hint, max_iter) == batch_outcome(
                    hint, max_iter
                ), (hint, max_iter)


class TestBatchedGolden:
    def test_lockstep_matches_scalar_rows(self):
        comps = [c for c in _compositions(23, 64) if c.is_profitable]
        a = np.array([comp.a for comp in comps])
        b = np.array([comp.b for comp in comps])
        c = np.array([comp.c for comp in comps])
        hi = np.array(
            [comp.optimal_input() * 4.0 + 1.0 for comp in comps]
        )

        def profit(t: np.ndarray) -> np.ndarray:
            return np.where(t == 0.0, 0.0, a * t / (b + c * t)) - t

        x, iterations = batched_golden_section(
            profit, hi, active=np.ones(len(comps), dtype=bool)
        )
        for k, comp in enumerate(comps):
            ref = golden_section_maximize(comp.profit, 0.0, float(hi[k]))
            assert x[k] == ref.x, f"row {k}"
            assert iterations[k] == ref.iterations, f"row {k}"

    def test_inactive_rows_stay_at_boundary(self):
        def profit(t):
            return -t

        x, iterations = batched_golden_section(
            profit, np.ones(4), active=np.zeros(4, dtype=bool)
        )
        assert (x == 0.0).all() and (iterations == 0).all()

    def test_nonconvergence_raises(self):
        def profit(t):
            return np.zeros(t.shape)

        with pytest.raises(SolverConvergenceError, match="golden-section"):
            batched_golden_section(
                profit,
                np.full(2, 1e9),
                active=np.ones(2, dtype=bool),
                max_iter=3,
            )
