"""Unit tests for the metric registry (counters/gauges/histograms)."""

from __future__ import annotations

import math
import random

import pytest

from repro.telemetry.metrics import (
    DEFAULT_RESERVOIR,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    get_registry,
)


class TestInstruments:
    def test_counter_inc_and_set(self):
        c = Counter("events")
        assert c.inc() == 1
        assert c.inc(4) == 5
        c.set(100)  # mirrored lifetime total
        assert c.value == 100

    def test_gauge_set_and_high_water(self):
        g = Gauge("depth")
        g.set(3)
        assert g.value == 3.0
        g.max(1)  # below the mark: unchanged
        assert g.value == 3.0
        g.max(7)
        assert g.value == 7.0

    def test_histogram_exact_aggregates(self):
        h = Histogram("lat")
        for v in (0.2, 0.1, 0.4):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.7)
        assert h.min == 0.1
        assert h.max == 0.4
        assert h.mean == pytest.approx(0.7 / 3)

    def test_histogram_empty_reads_nan_not_zero(self):
        h = Histogram("lat")
        assert math.isnan(h.mean)
        assert math.isnan(h.quantile(0.5))
        d = h.to_dict()
        assert d["count"] == 0
        assert math.isnan(d["p99_ms"])

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1e-9)


class TestReservoir:
    def test_storage_bounded_aggregates_exact(self):
        h = Histogram("lat", max_samples=64)
        n = 10_000
        for i in range(n):
            h.observe(i / n)
        assert h.samples_stored == 64  # bounded no matter the stream
        assert h.count == n  # aggregates still exact
        assert h.max == (n - 1) / n

    def test_default_reservoir_size(self):
        assert Histogram("lat").max_samples == DEFAULT_RESERVOIR

    def test_quantiles_representative_of_whole_stream(self):
        # uniform [0, 1) stream: reservoir quantiles must track the
        # true ones, not the most recent window
        h = Histogram("lat", max_samples=512)
        rng = random.Random(7)
        for _ in range(50_000):
            h.observe(rng.random())
        assert h.quantile(0.5) == pytest.approx(0.5, abs=0.08)
        assert h.quantile(0.95) == pytest.approx(0.95, abs=0.05)

    def test_deterministic_across_runs(self):
        # the RNG is seeded from the metric name: same name + same
        # stream -> bit-identical quantiles
        def fill(name):
            h = Histogram(name, max_samples=16)
            for i in range(1000):
                h.observe(i * 1e-4)
            return h

        assert fill("a")._samples == fill("a")._samples
        assert fill("a")._samples != fill("b")._samples

    def test_merge_combines_exact_and_reservoir(self):
        a, b = Histogram("lat", max_samples=8), Histogram("lat", max_samples=8)
        for v in (0.1, 0.2):
            a.observe(v)
        for v in (0.3, 0.9):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(1.5)
        assert a.min == 0.1 and a.max == 0.9
        assert a.samples_stored == 4


class TestRegistry:
    def test_accessors_memoize(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g", shard=1) is reg.gauge("g", shard=1)
        assert reg.gauge("g", shard=1) is not reg.gauge("g", shard=2)
        assert reg.histogram("h") is reg.histogram("h")

    def test_label_order_does_not_matter(self):
        reg = MetricRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_label_cardinality_cap(self):
        reg = MetricRegistry(max_label_sets=4)
        for i in range(4):
            reg.counter("a", loop=i)
        with pytest.raises(ValueError, match="label"):
            reg.counter("a", loop=99)
        # other families are unaffected
        reg.counter("b", loop=99)

    def test_merge_semantics(self):
        base, window = MetricRegistry(), MetricRegistry()
        base.counter("events").inc(10)
        base.gauge("depth_max").set(5)
        base.gauge("rate").set(1.0)
        base.histogram("lat").observe(0.1)
        window.counter("events").inc(3)
        window.gauge("depth_max").set(2)  # below: high-water survives
        window.gauge("rate").set(9.0)  # newer sample wins
        window.histogram("lat").observe(0.2)
        base.merge(window)
        assert base.counter("events").value == 13
        assert base.gauge("depth_max").value == 5.0
        assert base.gauge("rate").value == 9.0
        assert base.histogram("lat").count == 2

    def test_views_skip_labeled_children(self):
        reg = MetricRegistry()
        reg.counter("plain").inc()
        reg.counter("sharded", shard=0).inc()
        assert reg.counters() == {"plain": 1}
        reg.gauge("g").set(2)
        reg.gauge("g", shard=1).set(9)
        assert reg.gauges() == {"g": 2.0}

    def test_snapshot_shape_and_label_rendering(self):
        reg = MetricRegistry()
        reg.counter("events").inc(2)
        reg.gauge("depth", shard=3).set(1)
        reg.histogram("lat").observe(0.001)
        snap = reg.snapshot()
        assert sorted(snap) == ["counters", "gauges", "histograms"]
        assert snap["counters"] == {"events": 2}
        assert snap["gauges"] == {"depth{shard=3}": 1.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_collect_order_deterministic(self):
        reg = MetricRegistry()
        reg.gauge("z").set(1)
        reg.counter("b").inc()
        reg.counter("a").inc()
        names = [i.name for i in reg.collect()]
        assert names == ["a", "b", "z"]

    def test_process_wide_registry_is_shared(self):
        assert get_registry() is get_registry()
