"""Unit tests for async event sources and the shard worker."""

from __future__ import annotations

import time

import pytest

from repro.replay import generate_event_stream
from repro.service import (
    ShardPlan,
    ShardWorker,
    jsonl_source,
    log_source,
    make_workload,
    paced,
)
from repro.service.worker import BlockWork
from repro.strategies import MaxMaxStrategy


@pytest.fixture(scope="module")
def workload():
    return make_workload(8, 16, 5, 4, seed=21)


async def drain(source):
    return [event async for event in source]


class TestSources:
    async def test_log_source_preserves_order(self, workload):
        _, log = workload
        events = await drain(log_source(log))
        assert events == list(log)

    async def test_jsonl_source_round_trips(self, workload, tmp_path):
        _, log = workload
        path = tmp_path / "stream.jsonl"
        log.save(path)
        events = await drain(jsonl_source(path))
        assert events == list(log)

    async def test_paced_is_slower_and_lossless(self, workload):
        _, log = workload
        events = list(log)[:20]

        async def burst():
            for event in events:
                yield event

        t0 = time.perf_counter()
        got = await drain(paced(burst(), rate=2000.0))
        elapsed = time.perf_counter() - t0
        assert got == events
        # 20 events at 2000 ev/s needs ~9.5ms of schedule
        assert elapsed >= 0.008

    async def test_paced_rejects_bad_rate(self, workload):
        _, log = workload
        with pytest.raises(ValueError, match="rate"):
            await drain(paced(log_source(log), rate=0.0))


class TestShardWorker:
    def test_worker_owns_private_state(self, workload):
        market, _ = workload
        plan_loops = _loops_for(market)
        worker = ShardWorker(0, market, plan_loops, MaxMaxStrategy())
        # mutating the worker's pools must not touch the source market
        pool = next(iter(worker.market.registry))
        original = market.registry[pool.pool_id].reserve_of(pool.token0)
        pool.swap(pool.token0, 1.0)
        assert market.registry[pool.pool_id].reserve_of(pool.token0) == original

    def test_initial_entries_cover_every_loop(self, workload):
        market, _ = workload
        loops = _loops_for(market)
        worker = ShardWorker(3, market, loops, MaxMaxStrategy())
        entries = worker.initial_entries()
        assert len(entries) == len(loops)
        assert {e.shard for e in entries} == {3}
        assert len({e.loop_id for e in entries}) == len(loops)

    def test_process_block_reevaluates_only_dirty_loops(self, workload):
        market, log = workload
        loops = _loops_for(market)
        worker = ShardWorker(0, market, loops, MaxMaxStrategy())
        block, events = next(iter(log.iter_blocks()))
        update = worker.process_block(
            BlockWork(block=block, events=events, t_ingest=0.0, t_dispatch=0.0)
        )
        assert update.shard == 0 and update.block == block
        assert update.evaluated == len(update.entries)
        assert update.evaluated <= len(loops)
        assert update.cache_hits + update.cache_misses >= 0
        assert update.eval_s >= 0.0

    def test_untouched_block_costs_zero(self, workload):
        market, _ = workload
        loops = _loops_for(market)
        worker = ShardWorker(0, market, loops, MaxMaxStrategy())
        update = worker.process_block(
            BlockWork(block=0, events=(), t_ingest=0.0, t_dispatch=0.0)
        )
        assert update.evaluated == 0
        assert update.entries == ()


def _loops_for(market, length=3):
    from repro.engine import EvaluationEngine

    universe = EvaluationEngine().loop_universe(market.registry, length)
    plan = ShardPlan([p.pool_id for p in market.registry], universe.candidates, 1)
    return [universe.candidates[i] for i in plan.shard_loops[0]]


def test_generate_stream_feeds_worker_consistently(workload):
    """A worker fed its routed slice of a stream ends at the same pool
    states a global replay produces (same invariant the driver has)."""
    market, _ = workload
    log = generate_event_stream(market, n_blocks=3, events_per_block=4, seed=2)
    loops = _loops_for(market)
    plan = ShardPlan([p.pool_id for p in market.registry], loops, 1)
    worker = ShardWorker(0, market, loops, MaxMaxStrategy())
    for block, events in log.iter_blocks():
        routed = plan.route_block(events).get(0, [])
        worker.process_block(
            BlockWork(
                block=block, events=tuple(routed), t_ingest=0.0, t_dispatch=0.0
            )
        )
    # replaying the whole log onto a fresh copy gives identical reserves
    # on every pool the worker holds (it holds only its loops' pools)
    from repro.replay import apply_event

    copy = market.copy()
    prices = copy.prices
    for event in log:
        prices = apply_event(copy.registry, prices, event, set(), set())
    assert len(worker.market.registry) <= len(copy.registry)
    for pool in worker.market.registry:
        other = copy.registry[pool.pool_id]
        assert pool.reserve_of(pool.token0) == other.reserve_of(other.token0)
        assert pool.reserve_of(pool.token1) == other.reserve_of(other.token1)
