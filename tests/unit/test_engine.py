"""Unit tests for the batched evaluation engine.

Covers the job model (requests / batches / results), the
reserve-keyed rotation cache, both executors, the vectorized sweep
fast path, and the topology-cached loop universe.  The contract under
test throughout: the engine changes *when* work happens, never *what*
is computed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PriceMap, Token
from repro.data import paper_market
from repro.data.example import TOKEN_X
from repro.engine import (
    EvaluationBatch,
    EvaluationEngine,
    LoopUniverse,
    ParallelExecutor,
    PoolStateCache,
    SerialExecutor,
    is_vectorizable_loop,
    rotation_state_key,
)
from repro.graph.build import build_token_graph
from repro.graph.cycles import find_arbitrage_loops
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
    rotation_quote,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")

SMALL_GRID = np.array([1e-9, 2.0, 5.0, 12.0, 20.0])


def _sweep_strategies(loop):
    strategies = {
        f"start_{token.symbol}": TraditionalStrategy(start_token=token)
        for token in loop.tokens
    }
    strategies["maxmax"] = MaxMaxStrategy()
    strategies["maxprice"] = MaxPriceStrategy()
    return strategies


class TestPoolStateCache:
    def test_hit_after_miss(self, s5_loop):
        cache = PoolStateCache()
        rotation = s5_loop.rotations()[0]
        first = cache.rotation_quote(rotation)
        second = cache.rotation_quote(rotation)
        assert cache.misses == 1 and cache.hits == 1
        assert first is second

    def test_quote_matches_uncached(self, s5_loop):
        cache = PoolStateCache()
        for rotation in s5_loop.rotations():
            assert cache.rotation_quote(rotation) == rotation_quote(rotation)

    def test_reserve_change_invalidates(self, s5_loop):
        cache = PoolStateCache()
        rotation = s5_loop.rotations()[0]
        before = cache.rotation_quote(rotation)
        s5_loop.pools[0].swap(s5_loop.tokens[0], 5.0)
        after = cache.rotation_quote(rotation)
        assert cache.misses == 2
        assert after.amount_in != before.amount_in

    def test_key_distinguishes_method_and_orientation(self, s5_loop):
        rotations = s5_loop.rotations()
        keys = {rotation_state_key(r, "closed_form") for r in rotations}
        assert len(keys) == len(rotations)
        assert rotation_state_key(rotations[0], "closed_form") != rotation_state_key(
            rotations[0], "golden"
        )

    def test_lru_eviction(self, s5_loop):
        cache = PoolStateCache(maxsize=2)
        r0, r1, r2 = s5_loop.rotations()
        cache.rotation_quote(r0)
        cache.rotation_quote(r1)
        cache.rotation_quote(r2)  # evicts r0
        assert len(cache) == 2
        cache.rotation_quote(r0)
        assert cache.misses == 4 and cache.hits == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            PoolStateCache(maxsize=0)


class TestBatchModel:
    def test_cross_order_is_strategy_major(self, s5_loop, s5_prices):
        loops = [s5_loop, s5_loop.reversed()]
        strategies = {"a": MaxMaxStrategy(), "b": MaxPriceStrategy()}
        batch = EvaluationBatch.cross(strategies, loops, s5_prices)
        assert [r.label for r in batch] == ["a", "a", "b", "b"]
        assert [r.loop_index for r in batch] == [0, 1, 0, 1]

    def test_sweep_builds_one_price_map_per_point(self, s5_loop, s5_prices):
        batch = EvaluationBatch.sweep(
            {"mm": MaxMaxStrategy()}, s5_loop, s5_prices, TOKEN_X, [1.0, 2.0]
        )
        assert len(batch) == 2
        assert [r.prices[TOKEN_X] for r in batch] == [1.0, 2.0]
        assert [r.price_index for r in batch] == [0, 1]

    def test_batch_result_by_label(self, s5_loop, s5_prices):
        strategies = {"a": MaxMaxStrategy(), "b": MaxPriceStrategy()}
        batch = EvaluationBatch.cross(strategies, [s5_loop], s5_prices)
        result = EvaluationEngine().run(batch)
        grouped = result.by_label()
        assert set(grouped) == {"a", "b"}
        assert grouped["a"][0].monetized_profit == pytest.approx(205.6, abs=0.1)

    def test_mismatched_results_rejected(self, s5_loop, s5_prices):
        from repro.engine import BatchResult

        batch = EvaluationBatch.cross({"a": MaxMaxStrategy()}, [s5_loop], s5_prices)
        with pytest.raises(ValueError, match="requests"):
            BatchResult(requests=batch.requests, results=())


class TestExecutors:
    def test_serial_matches_direct_evaluation(self, s5_loop, s5_prices):
        batch = EvaluationBatch.sweep(
            _sweep_strategies(s5_loop), s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        results = SerialExecutor().run(batch.requests)
        for request, result in zip(batch.requests, results):
            ref = request.strategy.evaluate(request.loop, request.prices)
            assert result.monetized_profit == ref.monetized_profit

    def test_parallel_matches_serial_in_order(self, s5_loop, s5_prices):
        batch = EvaluationBatch.sweep(
            {"maxmax": MaxMaxStrategy()}, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        serial = SerialExecutor().run(batch.requests)
        parallel = ParallelExecutor(max_workers=2, min_batch_size=2).run(
            batch.requests
        )
        assert [r.monetized_profit for r in parallel] == [
            r.monetized_profit for r in serial
        ]

    def test_parallel_small_batch_runs_serially(self, s5_loop, s5_prices):
        batch = EvaluationBatch.cross({"mm": MaxMaxStrategy()}, [s5_loop], s5_prices)
        results = ParallelExecutor(max_workers=2).run(batch.requests)
        assert len(results) == 1

    def test_deterministic_chunking(self, s5_loop, s5_prices):
        batch = EvaluationBatch.sweep(
            {"mm": MaxMaxStrategy()}, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        executor = ParallelExecutor(max_workers=2, chunk_size=2)
        chunks = executor.chunks(batch.requests)
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert [r.price_index for chunk in chunks for r in chunk] == [0, 1, 2, 3, 4]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=-1)

    def test_parallel_merges_worker_quotes_into_shared_cache(
        self, s5_loop, s5_prices
    ):
        batch = EvaluationBatch.sweep(
            {"maxmax": MaxMaxStrategy()}, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        cache = PoolStateCache()
        ParallelExecutor(max_workers=2, min_batch_size=2).run(
            batch.requests, cache=cache
        )
        assert len(cache) == 3  # the three rotation quotes came back
        # a subsequent serial evaluation is a pure cache hit
        MaxMaxStrategy().evaluate_many([s5_loop], s5_prices, cache=cache)
        assert cache.hits == 3 and cache.misses == 0


class TestEngineSweep:
    def test_vectorized_matches_scalar_everywhere(self, s5_loop, s5_prices):
        strategies = _sweep_strategies(s5_loop)
        fast = EvaluationEngine().sweep_results(
            strategies, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        for label, strategy in strategies.items():
            for j, price in enumerate(SMALL_GRID):
                ref = strategy.evaluate(
                    s5_loop, s5_prices.with_price(TOKEN_X, float(price))
                )
                got = fast[label][j]
                assert got.monetized_profit == ref.monetized_profit
                assert got.start_token == ref.start_token
                assert got.amount_in == ref.amount_in
                assert got.hop_amounts == ref.hop_amounts
                assert got.details.get("per_rotation") == ref.details.get(
                    "per_rotation"
                )

    def test_vectorize_off_matches_vectorize_on(self, s5_loop, s5_prices):
        strategies = _sweep_strategies(s5_loop)
        fast = EvaluationEngine(vectorize=True).sweep_results(
            strategies, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        slow = EvaluationEngine(vectorize=False).sweep_results(
            strategies, s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        for label in strategies:
            assert [r.monetized_profit for r in fast[label]] == [
                r.monetized_profit for r in slow[label]
            ]

    def test_convex_falls_back_to_scalar_walk(self, s5_loop, s5_prices):
        grid = np.array([2.0, 15.0])
        results = EvaluationEngine().sweep_results(
            {"convex": ConvexOptimizationStrategy(backend="slsqp")},
            s5_loop,
            s5_prices,
            TOKEN_X,
            grid,
        )["convex"]
        refs = [
            ConvexOptimizationStrategy(backend="slsqp").evaluate(
                s5_loop, s5_prices.with_price(TOKEN_X, float(p))
            )
            for p in grid
        ]
        for got, ref in zip(results, refs):
            assert got.monetized_profit == pytest.approx(
                ref.monetized_profit, rel=1e-6
            )

    def test_empty_grid(self, s5_loop, s5_prices):
        results = EvaluationEngine().sweep_results(
            _sweep_strategies(s5_loop), s5_loop, s5_prices, TOKEN_X, []
        )
        assert all(series == [] for series in results.values())

    def test_sweep_fills_shared_cache(self, s5_loop, s5_prices):
        engine = EvaluationEngine()
        engine.sweep_results(
            _sweep_strategies(s5_loop), s5_loop, s5_prices, TOKEN_X, SMALL_GRID
        )
        # 3 rotations total; everything beyond the first three quotes hits
        assert engine.cache.misses == 3
        assert engine.cache.hits > 0

    def test_weighted_loop_not_vectorizable(self):
        from repro.amm import Pool
        from repro.amm.weighted import WeightedPool
        from repro.core import ArbitrageLoop

        pools = [
            Pool(X, Y, 100.0, 200.0, pool_id="v-xy"),
            WeightedPool(Y, Z, 300.0, 200.0, 0.8, 0.2, pool_id="v-yz"),
            Pool(Z, X, 200.0, 400.0, pool_id="v-zx"),
        ]
        loop = ArbitrageLoop([X, Y, Z], pools)
        assert not is_vectorizable_loop(loop)
        prices = PriceMap({X: 2.0, Y: 10.2, Z: 20.0})
        grid = np.array([1.0, 8.0])
        results = EvaluationEngine().sweep_results(
            {"mm": MaxMaxStrategy()}, loop, prices, X, grid
        )["mm"]
        for got, price in zip(results, grid):
            ref = MaxMaxStrategy().evaluate(loop, prices.with_price(X, float(price)))
            assert got.monetized_profit == ref.monetized_profit


class TestEngineBatches:
    def test_evaluate_strategy_matches_scalar(self, default_market):
        loops = find_arbitrage_loops(default_market.graph(), 3)[:10]
        engine = EvaluationEngine()
        batched = engine.evaluate_strategy(MaxMaxStrategy(), loops, default_market.prices)
        for loop, result in zip(loops, batched):
            ref = MaxMaxStrategy().evaluate(loop, default_market.prices)
            assert result.monetized_profit == ref.monetized_profit

    def test_evaluate_loops_shares_cache_across_strategies(
        self, s5_loop, s5_prices
    ):
        engine = EvaluationEngine()
        per_label = engine.evaluate_loops(
            {"maxmax": MaxMaxStrategy(), "maxprice": MaxPriceStrategy()},
            [s5_loop],
            s5_prices,
        )
        assert engine.cache.misses == 3  # maxprice reused maxmax's quotes
        assert engine.cache.hits >= 1
        assert (
            per_label["maxmax"][0].monetized_profit
            >= per_label["maxprice"][0].monetized_profit
        )

    def test_cached_evaluation_is_identical(self, s5_loop, s5_prices):
        engine = EvaluationEngine()
        ref = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        for _ in range(2):  # second round is a pure cache hit
            got = engine.evaluate(MaxMaxStrategy(), s5_loop, s5_prices)
            assert got.monetized_profit == ref.monetized_profit
            assert got.hop_amounts == ref.hop_amounts

    def test_batch_evaluator_memo_reuses_and_refreshes(self, default_market):
        """Harvest pattern: repeated evaluate_strategy calls over a
        universe's (changing) filtered sub-lists reuse one compiled
        evaluator, and reserve mutations between rounds are visible."""
        engine = EvaluationEngine()
        universe = engine.loop_universe(default_market.registry, 3)
        loops = list(universe.candidates)
        assert len(loops) >= 16  # above the batch-path floor
        strategy = MaxMaxStrategy()
        engine.evaluate_strategy(strategy, loops, default_market.prices)
        assert len(engine._batch_evaluators) == 1

        # mutate a pool, re-score a filtered sub-list of the same objects
        pool = loops[0].pools[0]
        pool.swap(pool.token0, pool.reserve0 * 0.05)
        subset = loops[: max(16, len(loops) // 2)]
        results = engine.evaluate_strategy(strategy, subset, default_market.prices)
        assert len(engine._batch_evaluators) == 1  # memo hit, no rebuild
        for loop, got in zip(subset, results):
            ref = strategy.evaluate(loop, default_market.prices)
            assert got.monetized_profit == ref.monetized_profit
            assert got.amount_in == ref.amount_in

    def test_scalar_engine_skips_batch_path(self, default_market):
        loops = list(
            EvaluationEngine().loop_universe(default_market.registry, 3).candidates
        )
        engine = EvaluationEngine(vectorize=False)
        engine.evaluate_strategy(MaxMaxStrategy(), loops, default_market.prices)
        assert len(engine._batch_evaluators) == 0
        assert engine.cache.misses > 0  # went through the cached scalar path


class TestLoopUniverse:
    @pytest.fixture(scope="class")
    def market(self):
        return paper_market()

    def test_profitable_matches_detector(self, market):
        universe = LoopUniverse(market.registry, 3)
        expected = find_arbitrage_loops(build_token_graph(market.registry), 3)
        assert universe.profitable() == expected
        assert universe.count_profitable() == len(expected)

    def test_reserve_change_updates_count_without_reenumeration(self):
        market = paper_market().copy()
        engine = EvaluationEngine()
        before_universe = engine.loop_universe(market.registry, 3)
        # push one pool far off parity; the memoized universe must see it
        pool = max(market.registry, key=lambda p: p.pool_id)
        pool.swap(pool.token0, pool.reserve_of(pool.token0) * 0.5)
        assert engine.loop_universe(market.registry, 3) is before_universe
        after = engine.count_profitable_loops(market.registry, 3)
        expected = len(find_arbitrage_loops(build_token_graph(market.registry), 3))
        assert after == expected

    def test_topology_change_reenumerates(self, small_registry, tokens_xyz):
        x, y, _z = tokens_xyz
        engine = EvaluationEngine()
        first = engine.loop_universe(small_registry, 3)
        small_registry.create(x, y, 50.0, 75.0, pool_id="r-xy2")
        second = engine.loop_universe(small_registry, 3)
        assert second is not first
        assert len(second) > len(first)

    def test_universe_memo_is_bounded(self, s5_loop):
        engine = EvaluationEngine()
        for _ in range(engine._max_universes + 3):
            # each fresh copy is a distinct topology (new pool objects)
            pools = [pool.copy() for pool in s5_loop.pools]
            engine.loop_universe(pools, 3)
        assert len(engine._universes) == engine._max_universes
