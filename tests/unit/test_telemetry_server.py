"""Unit tests for the asyncio metrics endpoint."""

from __future__ import annotations

import asyncio
import json

from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.server import MetricsServer


def _registry():
    reg = MetricRegistry()
    reg.counter("events_ingested").inc(5)
    reg.gauge("shard_queue_depth", shard=0).set(2)
    return reg


async def _get(port: int, path: str) -> tuple[str, str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode().partition("\r\n\r\n")
    return head, body


class TestMetricsServer:
    async def test_metrics_endpoint_serves_prometheus_text(self):
        async with MetricsServer(_registry()) as server:
            head, body = await _get(server.port, "/metrics")
        assert "200" in head.splitlines()[0]
        assert "text/plain; version=0.0.4" in head
        assert "# TYPE events_ingested counter" in body
        assert "events_ingested 5" in body.splitlines()
        assert 'shard_queue_depth{shard="0"} 2.0' in body.splitlines()

    async def test_json_endpoint_serves_snapshot(self):
        async with MetricsServer(_registry()) as server:
            _, body = await _get(server.port, "/json")
        snap = json.loads(body)
        assert snap["counters"] == {"events_ingested": 5}
        assert snap["gauges"] == {"shard_queue_depth{shard=0}": 2.0}

    async def test_callable_source_scrapes_live_state(self):
        # the serve CLI passes service.scrape_registry: every scrape
        # must re-resolve, not freeze the registry at start time
        reg = _registry()
        calls = []

        def source():
            calls.append(1)
            return reg

        async with MetricsServer(source) as server:
            await _get(server.port, "/metrics")
            reg.counter("events_ingested").inc(5)
            _, body = await _get(server.port, "/metrics")
        assert len(calls) == 2
        assert "events_ingested 10" in body.splitlines()

    async def test_unknown_path_is_404(self):
        async with MetricsServer(_registry()) as server:
            head, _ = await _get(server.port, "/nope")
        assert "404" in head.splitlines()[0]

    async def test_ephemeral_port_is_bound_and_reported(self):
        server = MetricsServer(_registry(), port=0)
        await server.start()
        try:
            assert server.port > 0
        finally:
            await server.stop()
