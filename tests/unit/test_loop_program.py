"""Unit tests for the eq.-(7)/(8) loop program builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InfeasibleProgramError, MissingPriceError, PriceMap
from repro.optimize import build_loop_program, solve_slsqp


@pytest.fixture
def lp(s5_loop, s5_prices):
    return build_loop_program(s5_loop, s5_prices)


class TestBuild:
    def test_variable_layout(self, lp):
        assert lp.program.n_vars == 6
        assert lp.program.var_names == (
            "in0[X]", "out0[Y]", "in1[Y]", "out1[Z]", "in2[Z]", "out2[X]",
        )

    def test_constraint_counts_eq8(self, lp):
        # 3 hop constraints + 3 linking inequalities, no equalities
        assert len(lp.program.inequalities) == 6
        assert len(lp.program.equalities) == 0

    def test_constraint_counts_eq7(self, s5_loop, s5_prices):
        lp7 = build_loop_program(s5_loop, s5_prices, linking="equality")
        # 3 hops + start-token linking inequality; 2 equalities
        assert len(lp7.program.inequalities) == 4
        assert len(lp7.program.equalities) == 2

    def test_objective_coefficients(self, lp, s5_prices):
        # out2 receives X (price 2), in0 spends X; out0 receives Y ...
        obj = lp.program.objective
        assert obj[0] == pytest.approx(-2.0)    # in0 spends X
        assert obj[1] == pytest.approx(10.2)    # out0 yields Y
        assert obj[2] == pytest.approx(-10.2)   # in1 spends Y
        assert obj[3] == pytest.approx(20.0)    # out1 yields Z
        assert obj[4] == pytest.approx(-20.0)   # in2 spends Z
        assert obj[5] == pytest.approx(2.0)     # out2 yields X

    def test_missing_price_raises_early(self, s5_loop):
        partial = PriceMap.from_symbols({"X": 2.0, "Y": 10.2})
        with pytest.raises(MissingPriceError):
            build_loop_program(s5_loop, partial)

    def test_invalid_linking(self, s5_loop, s5_prices):
        with pytest.raises(ValueError, match="linking"):
            build_loop_program(s5_loop, s5_prices, linking="bogus")


class TestInteriorPoint:
    def test_interior_point_strictly_feasible(self, lp):
        v0 = lp.interior_point()
        assert lp.program.is_strictly_feasible(v0)

    def test_no_interior_for_no_arb_loop(self, no_arb_loop, simple_prices):
        lp = build_loop_program(no_arb_loop, simple_prices)
        with pytest.raises(InfeasibleProgramError, match="no strictly feasible"):
            lp.interior_point()


class TestDecoding:
    def test_hop_amounts_shape(self, lp):
        v = np.arange(6, dtype=float)
        assert lp.hop_amounts(v) == [(0.0, 1.0), (2.0, 3.0), (4.0, 5.0)]

    def test_profit_vector_zero_solution(self, lp):
        profit = lp.profit_vector(np.zeros(6))
        assert all(a.amount == 0 for a in profit.amounts)
        assert lp.monetized_profit(np.zeros(6)) == 0.0

    def test_profit_vector_tracks_surpluses(self, lp, s5_loop):
        # Feed 10 X; keep 1 Y back; pass the rest through.
        x, y, z = s5_loop.tokens
        pools = s5_loop.pools
        out0 = pools[0].quote_out(x, 10.0)
        in1 = out0 - 1.0
        out1 = pools[1].quote_out(y, in1)
        out2 = pools[2].quote_out(z, out1)
        v = np.array([10.0, out0, in1, out1, out1, out2])
        net = lp.profit_vector(v).as_mapping()
        assert net[y] == pytest.approx(1.0)
        assert net[z] == pytest.approx(0.0, abs=1e-12)
        assert net[x] == pytest.approx(out2 - 10.0)

    def test_monetized_profit_matches_objective(self, lp):
        v = lp.interior_point()
        assert lp.monetized_profit(v) == pytest.approx(
            lp.program.objective_value(v), rel=1e-12
        )


class TestEq7ReducesToFixedStart:
    def test_eq7_solution_matches_traditional(self, s5_loop, s5_prices):
        """Eq. (7) with equality linking collapses to the 1-D fixed-start
        problem (the paper's reduction argument)."""
        from repro.strategies import TraditionalStrategy

        lp7 = build_loop_program(s5_loop, s5_prices, linking="equality")
        trad = TraditionalStrategy(start_token=s5_loop.tokens[0]).evaluate(
            s5_loop, s5_prices
        )
        v0 = np.zeros(6)
        v0[0] = trad.amount_in
        for i, (a_in, a_out) in enumerate(trad.hop_amounts):
            v0[2 * i] = a_in
            v0[2 * i + 1] = a_out
        result = solve_slsqp(lp7.program, initial_point=v0)
        assert result.objective == pytest.approx(trad.monetized_profit, rel=1e-5)
