"""Unit tests for the pure CPMM swap math."""

from __future__ import annotations

import math

import pytest

from repro.amm import swap
from repro.core import (
    InsufficientLiquidityError,
    InvalidFeeError,
    InvalidReserveError,
)


class TestAmountOut:
    def test_zero_input_zero_output(self):
        assert swap.amount_out(100.0, 200.0, 0.0, 0.003) == 0.0

    def test_no_fee_known_value(self):
        # dy = y*dx/(x+dx) = 200*100/(100+100) = 100
        assert swap.amount_out(100.0, 200.0, 100.0, 0.0) == pytest.approx(100.0)

    def test_fee_reduces_output(self):
        free = swap.amount_out(100.0, 200.0, 10.0, 0.0)
        taxed = swap.amount_out(100.0, 200.0, 10.0, 0.003)
        assert taxed < free

    def test_invariant_preserved_exactly(self):
        x, y, fee = 100.0, 200.0, 0.003
        dx = 37.5
        dy = swap.amount_out(x, y, dx, fee)
        gamma = 1.0 - fee
        assert (x + gamma * dx) * (y - dy) == pytest.approx(x * y, rel=1e-12)

    def test_output_strictly_below_reserve(self):
        # even absurdly large inputs cannot drain the pool
        assert swap.amount_out(100.0, 200.0, 1e18, 0.003) < 200.0

    def test_monotone_in_input(self):
        outs = [swap.amount_out(100.0, 200.0, dx, 0.003) for dx in (1, 2, 5, 10, 100)]
        assert outs == sorted(outs)
        assert len(set(outs)) == len(outs)

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            swap.amount_out(100.0, 200.0, -1.0, 0.003)

    def test_nan_input_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            swap.amount_out(100.0, 200.0, math.nan, 0.003)

    def test_bad_reserves_rejected(self):
        with pytest.raises(InvalidReserveError):
            swap.amount_out(0.0, 200.0, 1.0, 0.003)
        with pytest.raises(InvalidReserveError):
            swap.amount_out(100.0, -5.0, 1.0, 0.003)
        with pytest.raises(InvalidReserveError):
            swap.amount_out(math.inf, 200.0, 1.0, 0.003)

    def test_bad_fee_rejected(self):
        for bad in (-0.1, 1.0, 1.5, math.nan):
            with pytest.raises(InvalidFeeError):
                swap.amount_out(100.0, 200.0, 1.0, bad)


class TestAmountIn:
    def test_inverse_of_amount_out(self):
        x, y, fee = 100.0, 200.0, 0.003
        dx = 13.7
        dy = swap.amount_out(x, y, dx, fee)
        assert swap.amount_in(x, y, dy, fee) == pytest.approx(dx, rel=1e-12)

    def test_zero_output_zero_input(self):
        assert swap.amount_in(100.0, 200.0, 0.0, 0.003) == 0.0

    def test_draining_reserve_rejected(self):
        with pytest.raises(InsufficientLiquidityError):
            swap.amount_in(100.0, 200.0, 200.0, 0.003)
        with pytest.raises(InsufficientLiquidityError):
            swap.amount_in(100.0, 200.0, 250.0, 0.003)

    def test_negative_output_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            swap.amount_in(100.0, 200.0, -1.0, 0.003)

    def test_near_drain_needs_huge_input(self):
        dx = swap.amount_in(100.0, 200.0, 199.99, 0.003)
        assert dx > 1e5


class TestPrices:
    def test_spot_price_formula(self):
        # p = (1-fee) * y / x
        assert swap.spot_price(100.0, 200.0, 0.003) == pytest.approx(0.997 * 2.0)

    def test_spot_price_no_fee(self):
        assert swap.spot_price(100.0, 200.0, 0.0) == pytest.approx(2.0)

    def test_effective_price_below_spot(self):
        spot = swap.spot_price(100.0, 200.0, 0.003)
        eff = swap.effective_price(100.0, 200.0, 10.0, 0.003)
        assert eff < spot

    def test_effective_price_approaches_spot_at_zero(self):
        spot = swap.spot_price(100.0, 200.0, 0.003)
        eff = swap.effective_price(100.0, 200.0, 1e-9, 0.003)
        assert eff == pytest.approx(spot, rel=1e-7)

    def test_effective_price_requires_positive_size(self):
        with pytest.raises(ValueError, match="positive"):
            swap.effective_price(100.0, 200.0, 0.0, 0.003)

    def test_marginal_rate_at_zero_is_spot(self):
        assert swap.marginal_rate(100.0, 200.0, 0.0, 0.003) == pytest.approx(
            swap.spot_price(100.0, 200.0, 0.003)
        )

    def test_marginal_rate_decreasing(self):
        rates = [swap.marginal_rate(100.0, 200.0, dx, 0.003) for dx in (0, 1, 10, 100)]
        assert rates == sorted(rates, reverse=True)

    def test_marginal_rate_matches_finite_difference(self):
        x, y, fee = 100.0, 200.0, 0.003
        dx = 25.0
        h = 1e-6
        fd = (swap.amount_out(x, y, dx + h, fee) - swap.amount_out(x, y, dx - h, fee)) / (2 * h)
        assert swap.marginal_rate(x, y, dx, fee) == pytest.approx(fd, rel=1e-6)

    def test_max_amount_out(self):
        assert swap.max_amount_out(200.0) == 200.0
