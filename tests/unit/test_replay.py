"""Unit tests for the event-sourced replay subsystem."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry
from repro.amm.events import (
    BlockEvent,
    BurnEvent,
    MintEvent,
    PriceTickEvent,
    SwapEvent,
)
from repro.core import PriceMap, Token
from repro.core.errors import (
    EventLogFormatError,
    EventOrderError,
    ReplayError,
    UnknownPoolError,
)
from repro.data import MarketSnapshot, SyntheticMarketGenerator
from repro.replay import (
    MarketEventLog,
    ReplayDriver,
    event_from_dict,
    event_to_dict,
    generate_event_stream,
)


@pytest.fixture
def triangle_market(tokens_xyz):
    """One 3-loop (X-Y-Z) plus a dangling pool no loop can use."""
    x, y, z = tokens_xyz
    w = Token("W")
    registry = PoolRegistry()
    registry.create(x, y, 100.0, 200.0, pool_id="t-xy")
    registry.create(y, z, 300.0, 200.0, pool_id="t-yz")
    registry.create(z, x, 200.0, 400.0, pool_id="t-zx")
    registry.create(w, x, 500.0, 500.0, pool_id="t-wx")
    prices = PriceMap({x: 2.0, y: 10.2, z: 20.0, w: 1.0})
    return MarketSnapshot(registry=registry, prices=prices, label="triangle")


class TestEventFamily:
    def test_block_defaults_to_zero(self, tokens_xyz):
        x, y, _ = tokens_xyz
        event = SwapEvent("p", x, y, 1.0, 2.0)
        assert event.block == 0

    def test_block_is_keyword_only(self, tokens_xyz):
        x, y, _ = tokens_xyz
        event = SwapEvent("p", x, y, 1.0, 2.0, block=7)
        assert event.block == 7

    def test_pool_records_mint_and_burn(self, tokens_xyz):
        x, y, _ = tokens_xyz
        pool = Pool(x, y, 100.0, 200.0, pool_id="p")
        pool.add_liquidity(1.0, 2.0)
        out0, out1 = pool.remove_liquidity(0.01)
        mint, burn = pool.events
        assert mint == MintEvent(pool_id="p", amount0=1.0, amount1=2.0)
        assert burn == BurnEvent(pool_id="p", fraction=0.01, amount0=out0, amount1=out1)

    def test_discard_events_after(self, tokens_xyz):
        x, y, _ = tokens_xyz
        pool = Pool(x, y, 100.0, 200.0, pool_id="p")
        pool.swap(x, 1.0)
        pool.swap(x, 1.0)
        pool.discard_events_after(1)
        assert len(pool.events) == 1
        with pytest.raises(ValueError, match="count"):
            pool.discard_events_after(-1)


class TestEventCodec:
    def test_round_trip_every_type(self, tokens_xyz):
        x, y, _ = tokens_xyz
        events = [
            BlockEvent(block=0),
            PriceTickEvent(token=x, price=2.5, block=0),
            SwapEvent("p", x, y, 1.25, 2.4375, block=0),
            MintEvent("p", 0.1, 0.2, block=1),
            BurnEvent("p", 0.01, 1.0, 2.0, block=1),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event

    def test_token_metadata_survives(self):
        token = Token("WETH", decimals=8, address="0xabc")
        event = PriceTickEvent(token=token, price=1650.0, block=3)
        parsed = event_from_dict(event_to_dict(event))
        assert parsed.token.decimals == 8
        assert parsed.token.address == "0xabc"

    def test_unknown_tag_rejected(self):
        with pytest.raises(EventLogFormatError, match="unknown event type"):
            event_from_dict({"type": "teleport", "block": 0})

    def test_missing_field_rejected(self):
        with pytest.raises(EventLogFormatError, match="malformed"):
            event_from_dict({"type": "mint", "block": 0, "amount0": 1.0})


class TestMarketEventLog:
    def test_append_enforces_block_order(self):
        log = MarketEventLog()
        log.append(BlockEvent(block=1))
        with pytest.raises(EventOrderError):
            log.append(BlockEvent(block=0))
        assert isinstance(EventOrderError("x"), ReplayError)

    def test_iter_blocks_groups_consecutively(self, tokens_xyz):
        x, _, _ = tokens_xyz
        log = MarketEventLog(
            [
                BlockEvent(block=0),
                PriceTickEvent(token=x, price=1.0, block=0),
                BlockEvent(block=2),
            ]
        )
        grouped = dict(log.iter_blocks())
        assert set(grouped) == {0, 2}
        assert len(grouped[0]) == 2
        assert log.blocks() == (0, 2)

    def test_jsonl_round_trip_and_save(self, tmp_path, tokens_xyz):
        x, y, _ = tokens_xyz
        log = MarketEventLog(
            [
                BlockEvent(block=0),
                SwapEvent("p", x, y, 1.0 / 3.0, 0.12345678901234567, block=0),
            ]
        )
        assert MarketEventLog.from_jsonl(log.to_jsonl()) == log
        path = log.save(tmp_path / "stream.jsonl")
        assert MarketEventLog.load(path) == log

    def test_from_jsonl_bad_json(self):
        with pytest.raises(EventLogFormatError, match="invalid JSON"):
            MarketEventLog.from_jsonl('{"type": "block", "block": 0}\nnot json\n')

    def test_from_jsonl_out_of_order(self):
        text = (
            '{"type": "block", "block": 3}\n'
            '{"type": "block", "block": 1}\n'
        )
        with pytest.raises(EventLogFormatError, match="block-ordered"):
            MarketEventLog.from_jsonl(text)

    def test_touched_pool_ids(self, tokens_xyz):
        x, y, _ = tokens_xyz
        log = MarketEventLog(
            [
                SwapEvent("a", x, y, 1.0, 2.0, block=0),
                MintEvent("b", 1.0, 2.0, block=0),
                PriceTickEvent(token=x, price=1.0, block=0),
            ]
        )
        assert log.touched_pool_ids() == {"a", "b"}


class TestGenerator:
    def test_deterministic_per_seed(self, triangle_market):
        a = generate_event_stream(triangle_market, n_blocks=4, events_per_block=3, seed=5)
        b = generate_event_stream(triangle_market, n_blocks=4, events_per_block=3, seed=5)
        c = generate_event_stream(triangle_market, n_blocks=4, events_per_block=3, seed=6)
        assert a == b
        assert a != c

    def test_source_market_untouched(self, triangle_market):
        before = triangle_market.to_json()
        generate_event_stream(triangle_market, n_blocks=5, events_per_block=5, seed=1)
        assert triangle_market.to_json() == before

    def test_pools_per_block_limits_touch(self, triangle_market):
        log = generate_event_stream(
            triangle_market,
            n_blocks=6,
            events_per_block=5,
            seed=2,
            pools_per_block=1,
            price_ticks_per_block=0,
        )
        for _block, events in log.iter_blocks():
            pool_ids = {
                e.pool_id
                for e in events
                if isinstance(e, (SwapEvent, MintEvent, BurnEvent))
            }
            assert len(pool_ids) <= 1

    def test_validation(self, triangle_market):
        with pytest.raises(ValueError, match="n_blocks"):
            generate_event_stream(triangle_market, n_blocks=-1)
        with pytest.raises(ValueError, match="pools_per_block"):
            generate_event_stream(triangle_market, pools_per_block=0)
        with pytest.raises(ValueError, match="mint_fraction"):
            generate_event_stream(triangle_market, mint_fraction=0.9, burn_fraction=0.9)


def _parity(market, log, **kwargs):
    inc = ReplayDriver(market, mode="incremental", **kwargs)
    full = ReplayDriver(market, mode="full", **kwargs)
    ri = inc.replay(log)
    rf = full.replay(log)
    assert len(ri.reports) == len(rf.reports)
    for a, b in zip(ri.reports, rf.reports):
        assert a.same_numbers(b), f"mode mismatch at block {a.block}"
    return inc, full, ri, rf


class TestReplayDriver:
    def test_mode_validated(self, triangle_market):
        with pytest.raises(ValueError, match="mode"):
            ReplayDriver(triangle_market, mode="magic")
        with pytest.raises(ValueError, match="strategy"):
            ReplayDriver(triangle_market, strategies={})

    def test_unknown_pool_raises_typed_error(self, triangle_market, tokens_xyz):
        x, y, _ = tokens_xyz
        driver = ReplayDriver(triangle_market)
        log = MarketEventLog([SwapEvent("nope", x, y, 1.0, 2.0, block=0)])
        with pytest.raises(UnknownPoolError, match="nope"):
            driver.replay(log)
        log = MarketEventLog([MintEvent("missing", 1.0, 2.0, block=0)])
        with pytest.raises(UnknownPoolError, match="missing"):
            ReplayDriver(triangle_market).replay(log)

    def test_untouched_loops_cost_zero(self, triangle_market, tokens_xyz):
        """A swap on the dangling pool dirties no loop: zero evaluations."""
        x, _, _ = tokens_xyz
        w = Token("W")
        driver = ReplayDriver(triangle_market)
        log = MarketEventLog([SwapEvent("t-wx", w, x, 5.0, 4.9, block=0)])
        report = driver.replay(log).reports[0]
        assert report.dirty_pools == ("t-wx",)
        assert report.evaluated_loops == 0
        assert report.total_loops > 0

    def test_mint_and_burn_mid_stream_invalidate(self, triangle_market, tokens_xyz):
        x, y, _ = tokens_xyz
        pool = triangle_market.registry["t-xy"]
        r0 = pool.reserve_of(pool.token0)
        # mint amounts must match the *post-swap* ratio: stage the swap
        # on a copy to quote them, as any honest event producer would
        staged = triangle_market.copy().registry["t-xy"]
        staged.swap(x, 1.0)
        log = MarketEventLog(
            [
                SwapEvent("t-xy", x, y, 1.0, 0.0, block=0),
                MintEvent(
                    "t-xy",
                    staged.reserve_of(staged.token0) * 0.02,
                    staged.reserve_of(staged.token1) * 0.02,
                    block=1,
                ),
                BurnEvent("t-xy", 0.01, block=2),
            ]
        )
        inc, _full, ri, _rf = _parity(triangle_market, log)
        # the touched pool sits in every X-Y-Z loop: each block re-evaluates them
        for report in ri.reports:
            assert report.evaluated_loops > 0
            assert report.dirty_pools == ("t-xy",)
        # mid-stream mint changed depth: the driver's market reflects it
        replayed = inc.market.registry["t-xy"]
        assert replayed.reserve_of(replayed.token0) != r0

    def test_pool_touched_twice_in_one_block(self, triangle_market, tokens_xyz):
        x, y, _ = tokens_xyz
        log = MarketEventLog(
            [
                SwapEvent("t-xy", x, y, 1.0, 0.0, block=0),
                SwapEvent("t-xy", y, x, 0.5, 0.0, block=0),
            ]
        )
        inc, _full, ri, _rf = _parity(triangle_market, log)
        report = ri.reports[0]
        assert report.n_events == 2
        # both swaps applied sequentially...
        pool = inc.market.registry["t-xy"]
        assert pool.reserve_of(pool.token0) != 100.0
        # ...but each dirty loop evaluated exactly once for the block
        assert report.evaluated_loops <= report.total_loops

    def test_tick_only_block_re_monetizes_via_cache(self, triangle_market, tokens_xyz):
        x, _, _ = tokens_xyz
        driver = ReplayDriver(triangle_market)
        misses_after_prime = driver.engine.cache.misses
        log = MarketEventLog([PriceTickEvent(token=x, price=2.5, block=0)])
        report = driver.replay(log).reports[0]
        # every loop holding X re-evaluated, but reserves are unchanged,
        # so the optimization work is all cache hits — zero new misses
        assert report.evaluated_loops > 0
        assert driver.engine.cache.misses == misses_after_prime
        assert driver.engine.cache.hits > 0

    def test_tick_parity_with_full(self, triangle_market, tokens_xyz):
        x, _, _ = tokens_xyz
        log = MarketEventLog(
            [
                PriceTickEvent(token=x, price=2.5, block=0),
                SwapEvent("t-xy", x, Token("Y"), 2.0, 0.0, block=1),
            ]
        )
        _parity(triangle_market, log)

    def test_empty_block_keeps_state(self, triangle_market):
        log = MarketEventLog([BlockEvent(block=0), BlockEvent(block=1)])
        inc, _full, ri, _rf = _parity(triangle_market, log)
        assert [r.evaluated_loops for r in ri.reports] == [0, 0]
        assert ri.reports[0].profit_usd == ri.reports[1].profit_usd

    def test_sequential_replays_report_per_call(self, triangle_market, tokens_xyz):
        """A driver replaying two logs returns per-call results; the
        cumulative history stays on driver.reports."""
        x, y, _ = tokens_xyz
        driver = ReplayDriver(triangle_market)
        first = driver.replay(
            MarketEventLog([SwapEvent("t-xy", x, y, 1.0, 0.0, block=0)])
        )
        second = driver.replay(
            MarketEventLog([SwapEvent("t-xy", y, x, 0.5, 0.0, block=1)])
        )
        assert [r.block for r in first.reports] == [0]
        assert [r.block for r in second.reports] == [1]
        assert second.events_applied == 1
        assert [r.block for r in driver.reports] == [0, 1]

    def test_replayed_pools_do_not_accumulate_events(self, triangle_market, tokens_xyz):
        x, y, _ = tokens_xyz
        driver = ReplayDriver(triangle_market)
        driver.replay(
            MarketEventLog(
                [SwapEvent("t-xy", x, y, 1.0, 0.0, block=b) for b in range(5)]
            )
        )
        assert driver.market.registry["t-xy"].events == ()

    def test_synthetic_market_parity(self):
        market = SyntheticMarketGenerator(
            n_tokens=10, n_pools=24, seed=17, price_noise=0.02
        ).generate()
        log = generate_event_stream(market, n_blocks=5, events_per_block=6, seed=17)
        _triangle, _full, ri, rf = _parity(market, log)
        assert ri.evaluations() <= rf.evaluations()


class TestPrunedReplay:
    """``prune=True``: skip exact quotes for loops the bound proves
    unprofitable, with per-block reports bit-identical to the
    exhaustive driver."""

    def _market_and_log(self):
        market = SyntheticMarketGenerator(
            n_tokens=10, n_pools=24, seed=17, price_noise=0.02
        ).generate()
        log = generate_event_stream(
            market, n_blocks=6, events_per_block=6, seed=17,
            price_ticks_per_block=1,
        )
        return market, log

    def test_reports_bit_identical_with_fewer_exact_quotes(self):
        market, log = self._market_and_log()
        pruned = ReplayDriver(market, prune=True)
        exact = ReplayDriver(market, prune=False)
        rp = pruned.replay(log)
        rf = exact.replay(log)
        assert len(rp.reports) == len(rf.reports)
        for a, b in zip(rf.reports, rp.reports):
            assert a.same_numbers(b), f"prune mismatch at block {a.block}"
        assert rp.evaluations() < rf.evaluations()
        assert pruned.evaluator_stats.pruned_loops > 0
        assert exact.evaluator_stats.pruned_loops == 0

    def test_prune_requires_the_batch_evaluator(self, triangle_market):
        with pytest.raises(ValueError, match="prune"):
            ReplayDriver(triangle_market, mode="full", prune=True)
        from repro.engine import EvaluationEngine

        with pytest.raises(ValueError, match="prune"):
            ReplayDriver(
                triangle_market,
                engine=EvaluationEngine(vectorize=False),
                prune=True,
            )
