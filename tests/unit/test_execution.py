"""Unit tests for plans, the execution simulator, and flash loans."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry
from repro.core import PlanValidationError, Token
from repro.execution import (
    ExecutionPlan,
    ExecutionSimulator,
    FlashLoanProvider,
    PlannedSwap,
    plan_from_result,
)
from repro.strategies import ConvexOptimizationStrategy, MaxMaxStrategy, TraditionalStrategy

X, Y, Z = Token("X"), Token("Y"), Token("Z")


@pytest.fixture
def s5_registry(s5_loop):
    return PoolRegistry(s5_loop.pools)


class TestPlannedSwap:
    def test_token_out(self):
        pool = Pool(X, Y, 100.0, 200.0)
        swap = PlannedSwap(pool=pool, token_in=X, amount_in=5.0)
        assert swap.token_out == Y

    def test_validation(self):
        pool = Pool(X, Y, 100.0, 200.0)
        with pytest.raises(PlanValidationError, match="not in pool"):
            PlannedSwap(pool=pool, token_in=Z, amount_in=5.0)
        with pytest.raises(PlanValidationError, match="positive"):
            PlannedSwap(pool=pool, token_in=X, amount_in=0.0)
        with pytest.raises(PlanValidationError, match="min_amount_out"):
            PlannedSwap(pool=pool, token_in=X, amount_in=1.0, min_amount_out=-1.0)


class TestExecutionPlan:
    def test_chaining_enforced(self):
        p_xy = Pool(X, Y, 100.0, 200.0)
        p_zx = Pool(Z, X, 200.0, 400.0)
        with pytest.raises(PlanValidationError, match="does not chain"):
            ExecutionPlan([
                PlannedSwap(pool=p_xy, token_in=X, amount_in=1.0),
                PlannedSwap(pool=p_zx, token_in=Z, amount_in=1.0),
            ])

    def test_empty_rejected(self):
        with pytest.raises(PlanValidationError, match="at least one"):
            ExecutionPlan([])

    def test_cyclic_detection(self, s5_loop):
        result = TraditionalStrategy(start_token=X).evaluate(
            s5_loop, __import__("repro.data", fromlist=["section5_prices"]).section5_prices()
        )
        plan = plan_from_result(result)
        assert plan.is_cyclic
        assert plan.start_token == X
        assert plan.end_token == X
        assert len(plan) == 3
        assert plan.tokens_touched() == {X, Y, Z}

    def test_plan_from_zero_result_rejected(self, no_arb_loop, simple_prices):
        result = MaxMaxStrategy().evaluate(no_arb_loop, simple_prices)
        with pytest.raises(PlanValidationError, match="no trades"):
            plan_from_result(result)

    def test_slippage_tolerance_bounds(self, s5_loop, s5_prices):
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        with pytest.raises(PlanValidationError, match="tolerance"):
            plan_from_result(result, slippage_tolerance=1.0)

    def test_min_out_scaled_by_tolerance(self, s5_loop, s5_prices):
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        strict = plan_from_result(result, slippage_tolerance=0.0)
        loose = plan_from_result(result, slippage_tolerance=0.05)
        for s_swap, l_swap in zip(strict, loose):
            assert l_swap.min_amount_out == pytest.approx(s_swap.min_amount_out * 0.95)


class TestSimulator:
    def test_traditional_profit_realized_exactly(self, s5_loop, s5_prices, s5_registry):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        simulator = ExecutionSimulator(registry=s5_registry)
        receipt = simulator.execute(plan_from_result(result))
        assert not receipt.reverted
        realized = receipt.profit.as_mapping()
        predicted = result.profit.as_mapping()
        assert realized[Z] == pytest.approx(predicted[Z], rel=1e-9)
        assert receipt.monetized(s5_prices) == pytest.approx(
            result.monetized_profit, rel=1e-9
        )

    def test_convex_profit_realized_exactly(self, s5_loop, s5_prices, s5_registry):
        result = ConvexOptimizationStrategy(backend="slsqp").evaluate(
            s5_loop, s5_prices
        )
        simulator = ExecutionSimulator(registry=s5_registry)
        receipt = simulator.execute(plan_from_result(result, slippage_tolerance=1e-9))
        assert not receipt.reverted
        assert receipt.monetized(s5_prices) == pytest.approx(
            result.monetized_profit, rel=1e-6
        )

    def test_interference_triggers_revert_and_rollback(
        self, s5_loop, s5_prices, s5_registry
    ):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        plan = plan_from_result(result)  # zero slippage tolerance
        # Front-run: someone trades through the zx pool first.
        s5_registry["s5-zx"].swap(Z, 50.0)
        reserves_before = {
            pid: (s5_registry[pid].reserve_of(s5_registry[pid].token0))
            for pid in ("s5-xy", "s5-yz", "s5-zx")
        }
        simulator = ExecutionSimulator(registry=s5_registry)
        receipt = simulator.execute(plan)
        assert receipt.reverted
        assert "slippage" in receipt.revert_reason
        assert receipt.profit.as_mapping() == {}
        for pid, reserve in reserves_before.items():
            pool = s5_registry[pid]
            assert pool.reserve_of(pool.token0) == pytest.approx(reserve)

    def test_interference_within_tolerance_succeeds(
        self, s5_loop, s5_prices, s5_registry
    ):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        plan = plan_from_result(result, slippage_tolerance=0.5)
        s5_registry["s5-zx"].swap(Z, 1.0)  # small nudge
        receipt = ExecutionSimulator(registry=s5_registry).execute(plan)
        assert not receipt.reverted
        # realized profit differs from prediction but is still positive
        assert receipt.monetized(s5_prices) > 0

    def test_flash_loans_disabled(self, s5_loop, s5_prices, s5_registry):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        simulator = ExecutionSimulator(registry=s5_registry, allow_flash_loans=False)
        receipt = simulator.execute(plan_from_result(result))
        assert receipt.reverted
        assert "flash loans are off" in receipt.revert_reason

    def test_funded_trader_needs_no_loan(self, s5_loop, s5_prices, s5_registry):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        simulator = ExecutionSimulator(
            registry=s5_registry,
            balances={Z: 100.0},
            allow_flash_loans=False,
        )
        receipt = simulator.execute(plan_from_result(result))
        assert not receipt.reverted
        assert simulator.balance_of(Z) == pytest.approx(
            100.0 + result.profit.as_mapping()[Z], rel=1e-9
        )

    def test_flash_fee_reduces_profit(self, s5_loop, s5_prices, s5_registry):
        result = TraditionalStrategy(start_token=Z).evaluate(s5_loop, s5_prices)
        fee = 0.0009
        simulator = ExecutionSimulator(registry=s5_registry, flash_fee=fee)
        receipt = simulator.execute(plan_from_result(result))
        expected = result.profit.as_mapping()[Z] - result.amount_in * fee
        assert receipt.profit.as_mapping()[Z] == pytest.approx(expected, rel=1e-9)

    def test_negative_flash_fee_rejected(self, s5_registry):
        with pytest.raises(ValueError, match="flash_fee"):
            ExecutionSimulator(registry=s5_registry, flash_fee=-0.1)


class TestFlashLoanProvider:
    def test_borrow_and_repay(self):
        provider = FlashLoanProvider(liquidity={X: 1000.0}, fee=0.001)
        loan = provider.borrow(X, 100.0)
        assert loan.repayment == pytest.approx(100.1)
        assert provider.available(X) == pytest.approx(900.0)
        provider.repay(loan, 100.1)
        assert provider.available(X) == pytest.approx(1000.1)
        provider.assert_settled()

    def test_insufficient_liquidity(self):
        provider = FlashLoanProvider(liquidity={X: 10.0})
        from repro.core import ExecutionRevertedError

        with pytest.raises(ExecutionRevertedError, match="cannot lend"):
            provider.borrow(X, 100.0)

    def test_unknown_token_cannot_borrow(self):
        provider = FlashLoanProvider()
        from repro.core import ExecutionRevertedError

        with pytest.raises(ExecutionRevertedError):
            provider.borrow(X, 1.0)

    def test_partial_repayment_rejected(self):
        from repro.core import ExecutionRevertedError

        provider = FlashLoanProvider(liquidity={X: 1000.0}, fee=0.001)
        loan = provider.borrow(X, 100.0)
        with pytest.raises(ExecutionRevertedError, match="needs repayment"):
            provider.repay(loan, 100.0)

    def test_unsettled_detection(self):
        from repro.core import ExecutionRevertedError

        provider = FlashLoanProvider(liquidity={X: 1000.0})
        provider.borrow(X, 1.0)
        with pytest.raises(ExecutionRevertedError, match="unsettled"):
            provider.assert_settled()

    def test_validation(self):
        with pytest.raises(ValueError, match="fee"):
            FlashLoanProvider(fee=-0.1)
        with pytest.raises(ValueError, match="liquidity"):
            FlashLoanProvider(liquidity={X: -5.0})
        provider = FlashLoanProvider(liquidity={X: 5.0})
        with pytest.raises(ValueError, match="positive"):
            provider.borrow(X, 0.0)
