"""Unit tests for PoolRegistry."""

from __future__ import annotations

import pytest

from repro.amm import Pool, PoolRegistry
from repro.core import Token, UnknownTokenError

X, Y, Z = Token("X"), Token("Y"), Token("Z")


class TestCollection:
    def test_add_and_lookup(self, small_registry):
        assert len(small_registry) == 3
        assert "r-xy" in small_registry
        assert small_registry["r-xy"].pool_id == "r-xy"

    def test_missing_pool_id(self, small_registry):
        with pytest.raises(KeyError, match="nope"):
            small_registry["nope"]

    def test_duplicate_pool_id_rejected(self, small_registry):
        with pytest.raises(ValueError, match="duplicate"):
            small_registry.add(Pool(X, Y, 1.0, 1.0, pool_id="r-xy"))

    def test_create_shorthand(self):
        registry = PoolRegistry()
        pool = registry.create(X, Y, 10.0, 20.0, pool_id="c1")
        assert registry["c1"] is pool

    def test_iteration(self, small_registry):
        assert {p.pool_id for p in small_registry} == {"r-xy", "r-yz", "r-zx"}

    def test_init_from_iterable(self):
        pools = [Pool(X, Y, 1.0, 2.0, pool_id="a"), Pool(Y, Z, 1.0, 2.0, pool_id="b")]
        registry = PoolRegistry(pools)
        assert len(registry) == 2


class TestLookups:
    def test_tokens(self, small_registry):
        assert small_registry.tokens == frozenset({X, Y, Z})

    def test_pools_for_pair(self, small_registry):
        pools = small_registry.pools_for_pair(X, Y)
        assert [p.pool_id for p in pools] == ["r-xy"]
        assert small_registry.pools_for_pair(Y, X) == pools  # order-insensitive

    def test_pools_for_missing_pair(self, small_registry):
        assert small_registry.pools_for_pair(X, Token("Q")) == ()

    def test_pools_with_token(self, small_registry):
        assert {p.pool_id for p in small_registry.pools_with_token(X)} == {"r-xy", "r-zx"}

    def test_pools_with_unknown_token(self, small_registry):
        with pytest.raises(UnknownTokenError):
            small_registry.pools_with_token(Token("Q"))

    def test_parallel_pools(self):
        registry = PoolRegistry()
        registry.create(X, Y, 100.0, 200.0, pool_id="p1")
        registry.create(X, Y, 100.0, 210.0, pool_id="p2")
        assert len(registry.pools_for_pair(X, Y)) == 2

    def test_best_pool_for_pair(self):
        registry = PoolRegistry()
        registry.create(X, Y, 100.0, 200.0, pool_id="worse")
        registry.create(X, Y, 100.0, 210.0, pool_id="better")  # more Y out per X
        assert registry.best_pool_for_pair(X, Y).pool_id == "better"
        # In the reverse direction the cheap-Y pool is better.
        assert registry.best_pool_for_pair(Y, X).pool_id == "worse"

    def test_best_pool_missing_pair(self, small_registry):
        with pytest.raises(UnknownTokenError):
            small_registry.best_pool_for_pair(X, Token("Q"))


class TestSnapshotRestore:
    def test_snapshot_restore_roundtrip(self, small_registry):
        snap = small_registry.snapshot()
        small_registry["r-xy"].swap(X, 10.0)
        small_registry["r-yz"].swap(Y, 5.0)
        small_registry.restore(snap)
        assert small_registry["r-xy"].reserve_of(X) == 100.0
        assert small_registry["r-yz"].reserve_of(Y) == 300.0

    def test_snapshot_is_frozen(self, small_registry):
        snap = small_registry.snapshot()
        before = snap["r-xy"].reserve0
        small_registry["r-xy"].swap(X, 10.0)
        assert snap["r-xy"].reserve0 == before

    def test_snapshot_container_protocol(self, small_registry):
        snap = small_registry.snapshot()
        assert len(snap) == 3
        assert "r-xy" in snap
        assert {s.pool_id for s in snap} == {"r-xy", "r-yz", "r-zx"}

    def test_copy_independent(self, small_registry):
        clone = small_registry.copy()
        clone["r-xy"].swap(X, 10.0)
        assert small_registry["r-xy"].reserve_of(X) == 100.0
