"""Unit + differential tests for exact integer Uniswap-V2 arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import (
    IntegerPool,
    amount_out as float_amount_out,
    get_amount_in,
    get_amount_out,
)
from repro.core import InsufficientLiquidityError, InvalidReserveError

WAD = 10**18  # one 18-decimal token in base units


class TestGetAmountOut:
    def test_known_value(self):
        # 1 token in, pool of (100, 200) tokens (18 decimals)
        out = get_amount_out(1 * WAD, 100 * WAD, 200 * WAD)
        # float model: 200*0.997/(100+0.997) ~ 1.974...
        expected = float_amount_out(100.0, 200.0, 1.0, 0.003)
        assert out / WAD == pytest.approx(expected, rel=1e-9)

    def test_floor_rounding(self):
        # tiny pool where floor matters: 10 in, reserves (1000, 1000)
        out = get_amount_out(10, 1000, 1000)
        # exact: 10*997*1000/(1000*1000+10*997) = 9970000/1009970 = 9.87...
        assert out == 9

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError, match="INSUFFICIENT_INPUT"):
            get_amount_out(0, 1000, 1000)

    def test_bad_reserves_rejected(self):
        with pytest.raises(InvalidReserveError):
            get_amount_out(1, 0, 1000)
        with pytest.raises(InvalidReserveError):
            get_amount_out(1, 1000, -5)

    def test_output_below_reserve(self):
        assert get_amount_out(10**30, 1000, 1000) < 1000


class TestGetAmountIn:
    def test_round_trips_conservatively(self):
        reserve_in, reserve_out = 5_000 * WAD, 3_000 * WAD
        desired = 17 * WAD
        needed = get_amount_in(desired, reserve_in, reserve_out)
        assert get_amount_out(needed, reserve_in, reserve_out) >= desired

    def test_plus_one_makes_it_sufficient(self):
        # without the +1 the floor division can under-quote
        needed = get_amount_in(9, 1000, 1000)
        assert get_amount_out(needed, 1000, 1000) >= 9
        if needed > 1:
            assert get_amount_out(needed - 1, 1000, 1000) < 9

    def test_draining_rejected(self):
        with pytest.raises(InsufficientLiquidityError):
            get_amount_in(1000, 1000, 1000)

    def test_zero_output_rejected(self):
        with pytest.raises(ValueError, match="INSUFFICIENT_OUTPUT"):
            get_amount_in(0, 1000, 1000)


class TestIntegerPool:
    def test_swap_mutates_reserves(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        out = pool.swap(10 * WAD)
        assert pool.reserves == (110 * WAD, 200 * WAD - out)

    def test_k_never_decreases(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        k0 = pool.k
        pool.swap(10 * WAD)
        assert pool.k >= k0
        k1 = pool.k
        pool.swap(5 * WAD, zero_for_one=False)
        assert pool.k >= k1

    def test_directions(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        out01 = pool.quote_out(WAD, zero_for_one=True)
        out10 = pool.quote_out(WAD, zero_for_one=False)
        assert out01 > out10  # token0 is scarcer, worth more token1

    def test_validation(self):
        with pytest.raises(InvalidReserveError):
            IntegerPool(0, 100)


class TestDifferentialFloatVsInteger:
    @given(
        reserve_in=st.integers(min_value=10**15, max_value=10**27),
        reserve_out=st.integers(min_value=10**15, max_value=10**27),
        amount_in=st.integers(min_value=1, max_value=10**24),
    )
    @settings(max_examples=200)
    def test_integer_never_exceeds_float(self, reserve_in, reserve_out, amount_in):
        """Floor rounding only ever reduces output vs real arithmetic."""
        exact = get_amount_out(amount_in, reserve_in, reserve_out)
        real = float_amount_out(
            float(reserve_in), float(reserve_out), float(amount_in), 0.003
        )
        # integer result is the floor of the real result (up to float
        # representation error of the real model itself)
        assert exact <= real * (1.0 + 1e-12) + 1
        assert exact >= real * (1.0 - 1e-9) - 1

    @given(
        reserve_in=st.integers(min_value=10**20, max_value=10**27),
        reserve_out=st.integers(min_value=10**20, max_value=10**27),
        amount_in=st.integers(min_value=10**15, max_value=10**24),
    )
    @settings(max_examples=100)
    def test_relative_gap_negligible_at_wad_scale(
        self, reserve_in, reserve_out, amount_in
    ):
        """At 18-decimal scale the float model is accurate to ~1e-9."""
        exact = get_amount_out(amount_in, reserve_in, reserve_out)
        real = float_amount_out(
            float(reserve_in), float(reserve_out), float(amount_in), 0.003
        )
        if exact > 10**6:  # ignore dust outputs
            # float representation error plus the <=1-unit floor cut
            assert abs(exact - real) <= real * 1e-9 + 1.0
