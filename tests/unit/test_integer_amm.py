"""Unit + differential tests for exact integer Uniswap-V2 arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amm import (
    IntegerPool,
    amount_out as float_amount_out,
    execute_loop,
    get_amount_in,
    get_amount_out,
    loop_quote_in,
    loop_quote_out,
)
from repro.core import InsufficientLiquidityError, InvalidReserveError

WAD = 10**18  # one 18-decimal token in base units


class TestGetAmountOut:
    def test_known_value(self):
        # 1 token in, pool of (100, 200) tokens (18 decimals)
        out = get_amount_out(1 * WAD, 100 * WAD, 200 * WAD)
        # float model: 200*0.997/(100+0.997) ~ 1.974...
        expected = float_amount_out(100.0, 200.0, 1.0, 0.003)
        assert out / WAD == pytest.approx(expected, rel=1e-9)

    def test_floor_rounding(self):
        # tiny pool where floor matters: 10 in, reserves (1000, 1000)
        out = get_amount_out(10, 1000, 1000)
        # exact: 10*997*1000/(1000*1000+10*997) = 9970000/1009970 = 9.87...
        assert out == 9

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError, match="INSUFFICIENT_INPUT"):
            get_amount_out(0, 1000, 1000)

    def test_bad_reserves_rejected(self):
        with pytest.raises(InvalidReserveError):
            get_amount_out(1, 0, 1000)
        with pytest.raises(InvalidReserveError):
            get_amount_out(1, 1000, -5)

    def test_output_below_reserve(self):
        assert get_amount_out(10**30, 1000, 1000) < 1000


class TestGetAmountIn:
    def test_round_trips_conservatively(self):
        reserve_in, reserve_out = 5_000 * WAD, 3_000 * WAD
        desired = 17 * WAD
        needed = get_amount_in(desired, reserve_in, reserve_out)
        assert get_amount_out(needed, reserve_in, reserve_out) >= desired

    def test_plus_one_makes_it_sufficient(self):
        # without the +1 the floor division can under-quote
        needed = get_amount_in(9, 1000, 1000)
        assert get_amount_out(needed, 1000, 1000) >= 9
        if needed > 1:
            assert get_amount_out(needed - 1, 1000, 1000) < 9

    def test_draining_rejected(self):
        with pytest.raises(InsufficientLiquidityError):
            get_amount_in(1000, 1000, 1000)

    def test_zero_output_rejected(self):
        with pytest.raises(ValueError, match="INSUFFICIENT_OUTPUT"):
            get_amount_in(0, 1000, 1000)


class TestIntegerPool:
    def test_swap_mutates_reserves(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        out = pool.swap(10 * WAD)
        assert pool.reserves == (110 * WAD, 200 * WAD - out)

    def test_k_never_decreases(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        k0 = pool.k
        pool.swap(10 * WAD)
        assert pool.k >= k0
        k1 = pool.k
        pool.swap(5 * WAD, zero_for_one=False)
        assert pool.k >= k1

    def test_directions(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        out01 = pool.quote_out(WAD, zero_for_one=True)
        out10 = pool.quote_out(WAD, zero_for_one=False)
        assert out01 > out10  # token0 is scarcer, worth more token1

    def test_validation(self):
        with pytest.raises(InvalidReserveError):
            IntegerPool(0, 100)


class TestCustomFees:
    def test_default_matches_v2_constant(self):
        assert get_amount_out(10**18, 100 * WAD, 200 * WAD) == get_amount_out(
            10**18, 100 * WAD, 200 * WAD, 997, 1000
        )

    def test_ppm_fee_equals_permille_fee(self):
        # 997000/1e6 and 997/1000 share the factor 1000, so the floors
        # are identical on every input — the property the MarketArrays
        # ppm fee column relies on
        for amount in (1, 17, 10**9, 10**18, 10**24):
            assert get_amount_out(
                amount, 100 * WAD, 200 * WAD, 997_000, 1_000_000
            ) == get_amount_out(amount, 100 * WAD, 200 * WAD, 997, 1000)

    def test_fee_free_pool(self):
        # gamma = 1: pure constant-product floor math
        out = get_amount_out(10, 1000, 1000, 1, 1)
        assert out == (10 * 1000) // 1010

    def test_invalid_fee_rejected(self):
        with pytest.raises(ValueError, match="fee"):
            get_amount_out(1, 1000, 1000, 0, 1000)
        with pytest.raises(ValueError, match="fee"):
            get_amount_in(1, 1000, 1000, 1001, 1000)
        with pytest.raises(ValueError, match="fee"):
            IntegerPool(1000, 1000, -1, 1000)

    def test_pool_carries_fee(self):
        default = IntegerPool(100 * WAD, 200 * WAD)
        custom = IntegerPool(100 * WAD, 200 * WAD, 997_000, 1_000_000)
        assert default.fee_fraction == (997, 1000)
        assert custom.fee_fraction == (997_000, 1_000_000)
        assert default.quote_out(WAD) == custom.quote_out(WAD)


class TestExactOutPath:
    def test_quote_in_guarantees_output(self):
        pool = IntegerPool(5_000 * WAD, 3_000 * WAD)
        desired = 17 * WAD
        needed = pool.quote_in(desired)
        assert pool.quote_out(needed) >= desired

    def test_quote_in_directions(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        # withdrawing the scarce token0 must cost more token1 than the
        # mirror trade costs token0
        cost_for_token0 = pool.quote_in(WAD, zero_for_one=False)
        cost_for_token1 = pool.quote_in(WAD, zero_for_one=True)
        assert cost_for_token0 > cost_for_token1

    def test_swap_out_mutates_and_preserves_k(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        k0 = pool.k
        paid = pool.swap_out(10 * WAD)
        assert pool.reserves == (100 * WAD + paid, 190 * WAD)
        assert pool.k >= k0

    def test_swap_out_reverse_direction(self):
        pool = IntegerPool(100 * WAD, 200 * WAD)
        paid = pool.swap_out(10 * WAD, zero_for_one=False)
        assert pool.reserves == (90 * WAD, 200 * WAD + paid)

    def test_draining_rejected(self):
        pool = IntegerPool(1000, 1000)
        with pytest.raises(InsufficientLiquidityError):
            pool.quote_in(1000)

    @given(
        reserve0=st.integers(min_value=10**15, max_value=10**27),
        reserve1=st.integers(min_value=10**15, max_value=10**27),
        amount_out=st.integers(min_value=1, max_value=10**14),
    )
    @settings(max_examples=100)
    def test_quote_in_is_tight(self, reserve0, reserve1, amount_out):
        """quote_in is the *minimal* sufficient input: paying one base
        unit less yields strictly less than the desired output."""
        pool = IntegerPool(reserve0, reserve1)
        needed = pool.quote_in(amount_out)
        assert pool.quote_out(needed) >= amount_out
        if needed > 1:
            assert pool.quote_out(needed - 1) < amount_out


class TestLoopHelpers:
    def _triangle(self):
        return [
            (IntegerPool(100 * WAD, 200 * WAD), True),
            (IntegerPool(300 * WAD, 150 * WAD), True),
            (IntegerPool(80 * WAD, 120 * WAD), False),
        ]

    def test_loop_quote_out_chains_hops(self):
        hops = self._triangle()
        amounts = loop_quote_out(hops, 5 * WAD)
        assert len(amounts) == 4
        assert amounts[0] == 5 * WAD
        current = 5 * WAD
        for (pool, zero_for_one), expected in zip(hops, amounts[1:]):
            current = pool.quote_out(current, zero_for_one)
            assert current == expected

    def test_zero_input_yields_zeros(self):
        assert loop_quote_out(self._triangle(), 0) == [0, 0, 0, 0]

    def test_dust_floors_to_zero_and_stays_zero(self):
        # 1 base unit in a deep pool floors to 0 out; the rest of the
        # chain must carry the 0 instead of raising
        hops = [
            (IntegerPool(10**27, 10**18), True),
            (IntegerPool(100 * WAD, 100 * WAD), True),
        ]
        assert loop_quote_out(hops, 1) == [1, 0, 0]

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            loop_quote_out(self._triangle(), -1)

    def test_loop_quote_in_round_trips_conservatively(self):
        hops = self._triangle()
        desired = 3 * WAD
        amounts = loop_quote_in(hops, desired)
        assert amounts[-1] == desired
        # paying the quoted input forward must deliver at least the
        # desired output (every hop's +1 compounds in our favor)
        forward = loop_quote_out(hops, amounts[0])
        assert forward[-1] >= desired

    def test_loop_quote_in_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loop_quote_in(self._triangle(), 0)

    def test_execute_loop_matches_quote_on_distinct_pools(self):
        hops = self._triangle()
        quoted = loop_quote_out(hops, 5 * WAD)
        executed = execute_loop(self._triangle(), 5 * WAD)
        assert executed == quoted

    def test_execute_loop_mutates_reserves(self):
        hops = self._triangle()
        before = [pool.reserves for pool, _ in hops]
        amounts = execute_loop(hops, 5 * WAD)
        for (pool, zero_for_one), prev, a_in, a_out in zip(
            hops, before, amounts[:-1], amounts[1:]
        ):
            if zero_for_one:
                assert pool.reserves == (prev[0] + a_in, prev[1] - a_out)
            else:
                assert pool.reserves == (prev[0] - a_out, prev[1] + a_in)

    def test_execute_loop_sees_earlier_swaps_on_repeated_pool(self):
        # the same pool twice: execution must thread the mutated
        # reserves, so it differs from the static chain quote
        pool = IntegerPool(100 * WAD, 100 * WAD)
        hops = [(pool, True), (pool, False)]
        executed = execute_loop(hops, 10 * WAD)
        quoted = loop_quote_out(
            [(IntegerPool(100 * WAD, 100 * WAD), True),
             (IntegerPool(100 * WAD, 100 * WAD), False)],
            10 * WAD,
        )
        assert executed != quoted
        # round-tripping through the same pool pays the fee twice and
        # can never profit
        assert executed[-1] < 10 * WAD


class TestDifferentialFloatVsInteger:
    @given(
        reserve_in=st.integers(min_value=10**15, max_value=10**27),
        reserve_out=st.integers(min_value=10**15, max_value=10**27),
        amount_in=st.integers(min_value=1, max_value=10**24),
    )
    @settings(max_examples=200)
    def test_integer_never_exceeds_float(self, reserve_in, reserve_out, amount_in):
        """Floor rounding only ever reduces output vs real arithmetic."""
        exact = get_amount_out(amount_in, reserve_in, reserve_out)
        real = float_amount_out(
            float(reserve_in), float(reserve_out), float(amount_in), 0.003
        )
        # integer result is the floor of the real result (up to float
        # representation error of the real model itself)
        assert exact <= real * (1.0 + 1e-12) + 1
        assert exact >= real * (1.0 - 1e-9) - 1

    @given(
        reserve_in=st.integers(min_value=10**20, max_value=10**27),
        reserve_out=st.integers(min_value=10**20, max_value=10**27),
        amount_in=st.integers(min_value=10**15, max_value=10**24),
    )
    @settings(max_examples=100)
    def test_relative_gap_negligible_at_wad_scale(
        self, reserve_in, reserve_out, amount_in
    ):
        """At 18-decimal scale the float model is accurate to ~1e-9."""
        exact = get_amount_out(amount_in, reserve_in, reserve_out)
        real = float_amount_out(
            float(reserve_in), float(reserve_out), float(amount_in), 0.003
        )
        if exact > 10**6:  # ignore dust outputs
            # float representation error plus the <=1-unit floor cut
            assert abs(exact - real) <= real * 1e-9 + 1.0
