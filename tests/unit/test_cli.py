"""Unit tests for the CLI (fast commands only; figures run in
integration tests via the harness functions directly)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        expected = {
            "section5", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "runtime", "calibrate", "detect",
            "harvest", "discrepancy", "efficiency", "sweep", "replay",
            "serve", "loadgen",
        }
        assert expected <= set(sub.choices)

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_exits_2(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["figure-nine-hundred"])
        assert exc_info.value.code == 2

    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["detect", "--no-such-flag"])
        assert exc_info.value.code == 2

    def test_version_exits_0_and_prints(self, capsys):
        from repro.cli import package_version

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro-arb {package_version()}"

    def test_package_version_matches_source_tree(self):
        import repro
        from repro.cli import package_version

        # uninstalled (PYTHONPATH) runs fall back to repro.__version__;
        # installed runs must agree with it anyway
        assert package_version() == repro.__version__


class TestCommands:
    def test_section5(self, capsys):
        assert main(["section5"]) == 0
        out = capsys.readouterr().out
        assert "maxmax" in out
        assert "206" in out  # convex ~ 206.1$

    def test_fig1(self, capsys):
        assert main(["fig1", "--points", "50"]) == 0
        out = capsys.readouterr().out
        assert "optimal input" in out
        assert "26.96" in out

    def test_runtime_small(self, capsys):
        assert main(["runtime", "--lengths", "3", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "loop length" in out

    def test_harvest(self, capsys):
        assert main(["harvest", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "harvested $" in out

    def test_harvest_gas_floor(self, capsys):
        assert main(["harvest", "--rounds", "2", "--gwei", "20"]) == 0
        out = capsys.readouterr().out
        assert "gas breakeven" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--strategies", "maxmax,maxprice", "--step", "2"]) == 0
        out = capsys.readouterr().out
        assert "engine sweep of PX" in out
        assert "maxmax" in out and "maxprice" in out

    def test_sweep_csv(self, capsys, tmp_path):
        target = tmp_path / "sweep.csv"
        assert main(["sweep", "--step", "5", "--csv", str(target)]) == 0
        assert target.exists()
        assert "price" in target.read_text().splitlines()[0]

    def test_sweep_rejects_foreign_token(self):
        with pytest.raises(SystemExit, match="not in the"):
            main(["sweep", "--token", "Q"])

    def test_detect_with_jobs(self, capsys):
        # jobs=1 stays serial; exercises the engine-batched scoring path
        assert main(["detect", "--top", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "profitable length-3 loops" in out

    def test_detect_scalar_oracle_identical_across_jobs(self, capsys, tmp_path):
        """--scalar --jobs N is the correctness oracle under the process
        pool: its ranked CSV must be byte-identical to --scalar --jobs 1
        (deterministic chunking, order-preserving reassembly)."""
        serial = tmp_path / "serial.csv"
        pooled = tmp_path / "pooled.csv"
        assert main(["detect", "--scalar", "--jobs", "1",
                     "--csv", str(serial)]) == 0
        assert main(["detect", "--scalar", "--jobs", "2",
                     "--csv", str(pooled)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == pooled.read_bytes()

    def test_detect_scalar_matches_kernel_path(self, capsys, tmp_path):
        kernel = tmp_path / "kernel.csv"
        scalar = tmp_path / "scalar.csv"
        assert main(["detect", "--csv", str(kernel)]) == 0
        assert main(["detect", "--scalar", "--csv", str(scalar)]) == 0
        capsys.readouterr()
        assert kernel.read_bytes() == scalar.read_bytes()

    def test_detect_csv_is_byte_stable_across_runs(self, capsys, tmp_path):
        first = tmp_path / "a.csv"
        second = tmp_path / "b.csv"
        assert main(["detect", "--csv", str(first)]) == 0
        assert main(["detect", "--csv", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        header, *rows = first.read_text().splitlines()
        assert header == "rank,profit_usd,loop_id,path"
        # ranked: profit descending with canonical-id tie-break
        profits = [float(row.split(",")[1]) for row in rows]
        assert profits == sorted(profits, reverse=True)

    def test_detect_exact_prints_base_unit_column(self, capsys):
        assert main(["detect", "--top", "2", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "exact profit (base units)" in out

    def test_detect_exact_csv_columns_and_float_parity(self, capsys, tmp_path):
        """--exact appends integer columns without disturbing the float
        ranking: stripping them recovers the plain detect CSV byte for
        byte, and every exact row is internally consistent."""
        plain = tmp_path / "plain.csv"
        exact = tmp_path / "exact.csv"
        assert main(["detect", "--csv", str(plain)]) == 0
        assert main(["detect", "--exact", "--csv", str(exact)]) == 0
        capsys.readouterr()
        plain_lines = plain.read_text().splitlines()
        exact_lines = exact.read_text().splitlines()
        assert exact_lines[0] == (
            "rank,profit_usd,loop_id,path,exact_scale,exact_amount_in,"
            "exact_amount_out,exact_profit_units"
        )
        assert len(plain_lines) == len(exact_lines)
        for plain_row, exact_row in zip(plain_lines[1:], exact_lines[1:]):
            cells = exact_row.split(",")
            assert ",".join(cells[:4]) == plain_row
            scale, a_in, a_out, profit_units = cells[4:]
            assert scale == str(10**18)
            assert int(a_out) - int(a_in) == int(profit_units)

    def test_detect_exact_byte_stable_across_jobs(self, capsys, tmp_path):
        """Integer quotes are statements about contract arithmetic, so
        --exact output must not depend on the worker count."""
        serial = tmp_path / "serial.csv"
        pooled = tmp_path / "pooled.csv"
        assert main(["detect", "--exact", "--jobs", "1",
                     "--csv", str(serial)]) == 0
        assert main(["detect", "--exact", "--jobs", "4",
                     "--csv", str(pooled)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == pooled.read_bytes()

    def test_detect_exact_rejects_scalar(self):
        with pytest.raises(SystemExit, match="--exact"):
            main(["detect", "--exact", "--scalar"])

    def test_efficiency(self, capsys):
        assert main(["efficiency", "--blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "mispricing" in out
        assert "arbitrageur" in out

    def test_replay_synthetic(self, capsys):
        assert main([
            "replay", "--blocks", "3", "--pools", "18", "--tokens", "9",
            "--events-per-block", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "incremental replay" in out
        assert "loop evaluations" in out

    def test_replay_full_mode_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "replay.csv"
        assert main([
            "replay", "--blocks", "2", "--pools", "15", "--tokens", "8",
            "--mode", "full", "--csv", str(csv_path),
        ]) == 0
        assert "full replay" in capsys.readouterr().out
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("block,")
        assert "profit_usd_maxmax" in header

    def test_replay_save_and_reload_events(self, capsys, tmp_path):
        stream = tmp_path / "stream.jsonl"
        snapshot = tmp_path / "market.json"
        assert main([
            "replay", "--blocks", "2", "--pools", "15", "--tokens", "8",
            "--seed", "3", "--save-events", str(stream),
            "--save-snapshot", str(snapshot),
        ]) == 0
        capsys.readouterr()
        # round trip: replay the saved stream against the saved snapshot
        assert main([
            "replay", "--events", str(stream), "--snapshot", str(snapshot),
        ]) == 0
        assert "incremental replay" in capsys.readouterr().out

    def test_replay_events_requires_snapshot(self):
        with pytest.raises(SystemExit, match="together"):
            main(["replay", "--events", "stream.jsonl"])

    def test_replay_rejects_synthetic_flags_with_events(self):
        with pytest.raises(SystemExit, match="--blocks"):
            main(["replay", "--events", "s.jsonl", "--snapshot", "m.json",
                  "--blocks", "5"])

    def test_replay_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit, match="unknown strategy"):
            main(["replay", "--blocks", "1", "--strategies", "oracle"])

    def test_serve_synthetic(self, capsys):
        assert main([
            "serve", "--pools", "18", "--tokens", "9", "--blocks", "4",
            "--shards", "2", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 shard(s) [inline]" in out
        assert "opportunities" in out
        assert "end-to-end p50" in out

    def test_serve_reports_and_csv(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "book.csv"
        assert main([
            "serve", "--pools", "15", "--tokens", "8", "--blocks", "3",
            "--json", str(json_path), "--csv", str(csv_path),
        ]) == 0
        capsys.readouterr()
        import json

        data = json.loads(json_path.read_text())
        assert data["n_shards"] == 1 and data["events_ingested"] > 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("rank,profit_usd,loop_id")

    def test_serve_file_source_round_trip(self, capsys, tmp_path):
        stream = tmp_path / "stream.jsonl"
        snapshot = tmp_path / "market.json"
        assert main([
            "replay", "--blocks", "2", "--pools", "15", "--tokens", "8",
            "--seed", "3", "--save-events", str(stream),
            "--save-snapshot", str(snapshot),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--events", str(stream), "--snapshot", str(snapshot),
            "--shards", "2",
        ]) == 0
        assert "serving" in capsys.readouterr().out

    def test_serve_simulation_source(self, capsys):
        assert main([
            "serve", "--simulate", "3", "--pools", "15", "--tokens", "8",
        ]) == 0
        assert "live simulation" in capsys.readouterr().out

    def test_serve_rejects_conflicting_sources(self, tmp_path):
        with pytest.raises(SystemExit, match="together"):
            main(["serve", "--events", "s.jsonl"])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["serve", "--events", "s.jsonl", "--snapshot", "m.json",
                  "--simulate", "3"])

    def test_serve_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit, match="unknown strategy"):
            main(["serve", "--blocks", "1", "--strategy", "oracle"])

    def test_serve_rejects_bad_shards(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["serve", "--shards", "0"])

    def test_loadgen_rate_ladder_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "load.csv"
        assert main([
            "loadgen", "--pools", "15", "--tokens", "8", "--blocks", "3",
            "--events-per-block", "3", "--rates", "0,5000",
            "--csv", str(csv_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "achieved ev/s" in out
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3  # header + one row per rate
        assert lines[0].startswith("n_pools,")

    def test_loadgen_rejects_bad_rates(self):
        with pytest.raises(SystemExit, match="--rates"):
            main(["loadgen", "--rates", "fast"])

    def test_fig2_csv(self, capsys, tmp_path, monkeypatch):
        # shrink the grid for speed by monkeypatching the default grid
        import repro.analysis.experiments as exp
        import numpy as np

        monkeypatch.setattr(
            exp, "paper_px_grid", lambda: np.array([1.0, 2.0, 15.0])
        )
        csv_path = tmp_path / "fig2.csv"
        assert main(["fig2", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("price_X")

    def test_detect_pruned_table_matches_no_prune(self, capsys):
        """The bound-pruned default ranking is presentation-identical to
        the exhaustive pass; only the pruning summary line differs."""
        assert main(["detect", "--top", "3"]) == 0
        pruned_out = capsys.readouterr().out
        assert main(["detect", "--top", "3", "--no-prune"]) == 0
        exact_out = capsys.readouterr().out
        assert "bound pruning skipped" in pruned_out
        assert "bound pruning skipped" not in exact_out
        table = [
            line for line in pruned_out.splitlines()
            if "bound pruning" not in line
        ]
        assert table == exact_out.splitlines()

    def test_replay_no_prune_same_numbers(self, capsys):
        args = ["replay", "--blocks", "3", "--pools", "15", "--tokens", "8",
                "--events-per-block", "4", "--seed", "5"]
        assert main(args) == 0
        pruned_out = capsys.readouterr().out
        assert main(args + ["--no-prune"]) == 0
        exact_out = capsys.readouterr().out
        assert "bound pruning skipped" in pruned_out
        assert "bound pruning skipped" not in exact_out

        def profits(out):
            # the evaluated/cache counters are the only allowed deltas:
            # drop the summary lines and the per-row evaluated column
            rows = []
            for line in out.splitlines():
                if "evaluations" in line or "bound pruning" in line:
                    continue
                fields = line.split()
                if fields and fields[0].isdigit():
                    del fields[3]  # evaluated N/M
                rows.append(fields)
            return rows

        assert profits(pruned_out) == profits(exact_out)

    def test_serve_no_prune_matches_pruned_book(self, capsys):
        args = ["serve", "--pools", "15", "--tokens", "8", "--blocks", "3",
                "--shards", "2", "--top", "3", "--seed", "7"]
        assert main(args) == 0
        pruned_out = capsys.readouterr().out
        assert main(args + ["--no-prune"]) == 0
        exact_out = capsys.readouterr().out
        assert "pruned by bounds" in pruned_out
        assert "(0 pruned by bounds)" in exact_out

        def book(out):
            lines = out.splitlines()
            return [line for line in lines if "$" in line]

        assert book(pruned_out) == book(exact_out)
