"""Unit tests for bisection, golden-section, and closed-form optimizers."""

from __future__ import annotations

import math

import pytest

from repro.core import SolverConvergenceError
from repro.optimize import (
    bisect_root,
    golden_section_maximize,
    maximize_by_derivative,
    optimize_composition,
    optimize_rotation,
)
from repro.amm import compose_hops

S5_HOPS = [(100, 200, 0.003), (300, 200, 0.003), (200, 400, 0.003)]


class TestBisectRoot:
    def test_linear_root(self):
        root, _ = bisect_root(lambda t: 5.0 - t, 0.0, 10.0)
        assert root == pytest.approx(5.0, abs=1e-9)

    def test_requires_straddling_bracket(self):
        with pytest.raises(ValueError, match="straddle"):
            bisect_root(lambda t: 1.0 + t, 0.0, 10.0)  # increasing, no root

    def test_relative_tolerance_at_large_scale(self):
        root, _ = bisect_root(lambda t: 1e9 - t, 0.0, 1e10)
        assert root == pytest.approx(1e9, rel=1e-9)

    def test_iteration_budget_exhaustion(self):
        with pytest.raises(SolverConvergenceError, match="did not converge"):
            bisect_root(lambda t: 5.0 - t, 0.0, 10.0, tol=1e-30, max_iter=5)


class TestMaximizeByDerivative:
    def test_matches_closed_form(self):
        comp = compose_hops(S5_HOPS)
        result = maximize_by_derivative(comp.profit, comp.derivative)
        assert result.converged
        assert result.x == pytest.approx(comp.optimal_input(), rel=1e-9)
        assert result.value == pytest.approx(comp.optimal_profit(), rel=1e-9)

    def test_no_arbitrage_returns_zero(self):
        comp = compose_hops([(100, 200, 0.003), (200, 100, 0.003)])
        result = maximize_by_derivative(comp.profit, comp.derivative)
        assert result.x == 0.0
        assert result.value == 0.0
        assert result.converged

    def test_bracket_expansion(self):
        # Optimum far beyond the initial bracket hint.
        comp = compose_hops([(1e6, 3e6, 0.003), (1e6, 1e6, 0.003)])
        result = maximize_by_derivative(comp.profit, comp.derivative, initial_hi=1.0)
        assert result.x == pytest.approx(comp.optimal_input(), rel=1e-9)


class TestGoldenSection:
    def test_parabola(self):
        result = golden_section_maximize(lambda t: -(t - 3.0) ** 2, 0.0, 10.0)
        assert result.x == pytest.approx(3.0, abs=1e-6)
        assert result.converged

    def test_matches_closed_form_on_loop_profit(self):
        comp = compose_hops(S5_HOPS)
        hi = comp.optimal_input() * 4
        result = golden_section_maximize(comp.profit, 0.0, hi)
        assert result.x == pytest.approx(comp.optimal_input(), rel=1e-6)

    def test_degenerate_interval(self):
        result = golden_section_maximize(lambda t: -t * t, 2.0, 2.0)
        assert result.x == 2.0

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            golden_section_maximize(lambda t: t, 1.0, 0.0)

    def test_boundary_maximum(self):
        result = golden_section_maximize(lambda t: t, 0.0, 1.0)
        assert result.x == pytest.approx(1.0, abs=1e-6)


class TestClosedForm:
    def test_optimize_composition(self):
        comp = compose_hops(S5_HOPS)
        result = optimize_composition(comp)
        assert result.x == pytest.approx((math.sqrt(comp.a * comp.b) - comp.b) / comp.c)
        assert result.iterations == 0
        assert result.converged

    def test_optimize_rotation_section5(self, s5_loop):
        result = optimize_rotation(s5_loop.rotations()[0])
        assert result.x == pytest.approx(27.0, abs=0.05)
        assert result.value == pytest.approx(16.87, abs=0.01)

    def test_unprofitable_rotation(self, no_arb_loop):
        result = optimize_rotation(no_arb_loop.rotations()[0])
        assert result.x == 0.0
        assert result.value == 0.0


class TestThreeMethodsAgree:
    @pytest.mark.parametrize("hops", [
        S5_HOPS,
        [(1000, 1200, 0.003), (500, 450, 0.003)],
        [(1e6, 1.02e6, 0.003), (1e6, 1.01e6, 0.003), (1e6, 1.0e6, 0.003), (1e6, 1.03e6, 0.003)],
    ])
    def test_agreement(self, hops):
        comp = compose_hops(hops)
        exact = optimize_composition(comp)
        bis = maximize_by_derivative(comp.profit, comp.derivative)
        assert bis.x == pytest.approx(exact.x, rel=1e-8, abs=1e-10)
        if exact.x > 0:
            gold = golden_section_maximize(comp.profit, 0.0, exact.x * 4)
            assert gold.x == pytest.approx(exact.x, rel=1e-5)
