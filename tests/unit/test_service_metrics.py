"""Unit tests for the service metrics registry."""

from __future__ import annotations

import math

import pytest

from repro.service import LatencyStat, ServiceMetrics


class TestLatencyStat:
    def test_nearest_rank_quantiles_are_exact(self):
        stat = LatencyStat("t")
        for value in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
            stat.observe(value)
        assert stat.quantile(0.5) == 0.5
        assert stat.quantile(0.99) == 1.0
        assert stat.quantile(0.0) == 0.1
        assert stat.quantile(1.0) == 1.0

    def test_running_aggregates(self):
        stat = LatencyStat("t")
        stat.observe(2.0)
        stat.observe(4.0)
        assert stat.count == 2
        assert stat.mean == 3.0
        assert stat.min == 2.0 and stat.max == 4.0

    def test_empty_stat_is_all_nan(self):
        # an empty stat has no latency: every summary field is nan, so
        # a missing signal can never masquerade as "0 ms" in a report
        stat = LatencyStat("t")
        assert math.isnan(stat.quantile(0.5))
        assert math.isnan(stat.quantile(0.0))
        assert math.isnan(stat.quantile(1.0))
        assert math.isnan(stat.mean)
        data = stat.to_dict()
        assert data["count"] == 0
        for field in ("mean_ms", "p50_ms", "p99_ms", "min_ms", "max_ms"):
            assert math.isnan(data[field]), field
        assert "nan" in repr(stat)

    def test_single_observation_leaves_nan_behind(self):
        stat = LatencyStat("t")
        stat.observe(0.5)
        assert stat.quantile(0.5) == 0.5
        assert stat.mean == 0.5
        assert not any(
            isinstance(v, float) and math.isnan(v)
            for v in stat.to_dict().values()
        )

    def test_reservoir_bound_keeps_counting(self):
        stat = LatencyStat("t", max_samples=10)
        for i in range(100):
            stat.observe(float(i))
        assert stat.count == 100
        assert stat.max == 99.0
        assert len(stat._samples) == 10

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            LatencyStat("t", max_samples=0)
        stat = LatencyStat("t")
        with pytest.raises(ValueError):
            stat.observe(-1.0)
        with pytest.raises(ValueError):
            stat.quantile(1.5)

    def test_to_dict_is_in_milliseconds(self):
        stat = LatencyStat("t")
        stat.observe(0.25)
        data = stat.to_dict()
        assert data["p50_ms"] == 250.0
        assert data["max_ms"] == 250.0


class TestServiceMetrics:
    def test_counters_accumulate(self):
        metrics = ServiceMetrics()
        assert metrics.inc("events") == 1
        assert metrics.inc("events", 5) == 6
        assert metrics.counters["events"] == 6

    def test_gauge_max_tracks_high_water_mark(self):
        metrics = ServiceMetrics()
        metrics.observe_gauge_max("depth", 3)
        metrics.observe_gauge_max("depth", 1)
        assert metrics.gauges["depth"] == 3
        metrics.set_gauge("depth", 0.5)
        assert metrics.gauges["depth"] == 0.5

    def test_latency_registry_is_memoized(self):
        metrics = ServiceMetrics()
        assert metrics.latency("a") is metrics.latency("a")
        metrics.latency("a").observe(0.1)
        assert metrics.to_dict()["latencies"]["a"]["count"] == 1

    def test_to_dict_shape(self):
        metrics = ServiceMetrics()
        metrics.inc("z")
        metrics.inc("a")
        metrics.set_gauge("g", 1.0)
        data = metrics.to_dict()
        assert list(data["counters"]) == ["a", "z"]  # sorted
        assert set(data) == {"counters", "gauges", "latencies"}
