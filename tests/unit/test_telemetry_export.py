"""Golden-file tests for the exporters.

Output is deterministically ordered by construction, so these assert
**byte equality** against inline goldens — any formatting drift in the
Prometheus or Chrome renderings is a deliberate, reviewed change.
"""

from __future__ import annotations

import json

from repro.telemetry.export import (
    chrome_trace_events,
    prometheus_text,
    spans_to_chrome,
    spans_to_jsonl,
    write_prometheus,
    write_trace,
)
from repro.telemetry.metrics import MetricRegistry
from repro.telemetry.trace import Span


def _spans():
    return [
        Span(name="ingest.block", start_ns=1_000, dur_ns=5_000, span_id=1,
             parent_id=None, pid=7, tid=0, attrs={"block": 3, "events": 2}),
        Span(name="shard.quote", start_ns=2_000, dur_ns=1_500, span_id=2,
             parent_id=1, pid=7, tid=1, attrs={"loops": 4}),
    ]


def _registry():
    reg = MetricRegistry()
    reg.counter("events_ingested").inc(12)
    reg.counter("kernel_loops", shard=0).inc(44)
    reg.counter("kernel_loops", shard=1).inc(24)
    reg.gauge("queue_depth", shard=0).set(2)
    h = reg.histogram("end_to_end", max_samples=8)
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    reg.histogram("empty_lat")  # empty: quantiles omitted, not NaN
    return reg


PROM_GOLDEN = """\
# TYPE events_ingested counter
events_ingested 12
# TYPE kernel_loops counter
kernel_loops{shard="0"} 44
kernel_loops{shard="1"} 24
# TYPE queue_depth gauge
queue_depth{shard="0"} 2.0
# TYPE empty_lat summary
empty_lat_sum 0.0
empty_lat_count 0
# TYPE end_to_end summary
end_to_end{quantile="0.5"} 0.002
end_to_end{quantile="0.95"} 0.004
end_to_end{quantile="0.99"} 0.004
end_to_end_sum 0.007
end_to_end_count 3
"""

CHROME_GOLDEN = [
    {"name": "ingest.block", "ph": "X", "ts": 1.0, "dur": 5.0,
     "pid": 7, "tid": 0, "args": {"block": 3, "events": 2}},
    {"name": "shard.quote", "ph": "X", "ts": 2.0, "dur": 1.5,
     "pid": 7, "tid": 1, "args": {"loops": 4}},
]


class TestPrometheus:
    def test_text_matches_golden_exactly(self):
        assert prometheus_text(_registry()) == PROM_GOLDEN

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricRegistry()) == ""

    def test_name_and_label_sanitization(self):
        reg = MetricRegistry()
        reg.counter("shard0.evals", **{"loop-id": 'a"b'}).inc()
        (line,) = [
            ln for ln in prometheus_text(reg).splitlines()
            if not ln.startswith("#")
        ]
        assert line == 'shard0_evals{loop_id="a\\"b"} 1'

    def test_write_prometheus_round_trips(self, tmp_path):
        path = write_prometheus(_registry(), tmp_path / "metrics.prom")
        assert path.read_text() == PROM_GOLDEN


class TestChromeTrace:
    def test_events_match_golden_exactly(self):
        assert chrome_trace_events(_spans()) == CHROME_GOLDEN

    def test_chrome_file_shape(self, tmp_path):
        path = spans_to_chrome(_spans(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload == {
            "traceEvents": CHROME_GOLDEN,
            "displayTimeUnit": "ms",
        }

    def test_events_sorted_by_start_time(self):
        spans = list(reversed(_spans()))
        assert chrome_trace_events(spans) == CHROME_GOLDEN


class TestJsonl:
    def test_jsonl_lines_sorted_and_exact(self, tmp_path):
        path = spans_to_jsonl(_spans(), tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "ingest.block",
            "shard.quote",
        ]
        assert json.loads(lines[1]) == {
            "name": "shard.quote", "start_ns": 2000, "dur_ns": 1500,
            "span_id": 2, "parent_id": 1, "pid": 7, "tid": 1,
            "attrs": {"loops": 4},
        }


class TestWriteTrace:
    def test_suffix_dispatch(self, tmp_path):
        jsonl = write_trace(_spans(), tmp_path / "t.jsonl")
        chrome = write_trace(_spans(), tmp_path / "t.json")
        assert jsonl.read_text().startswith("{")
        assert json.loads(jsonl.read_text().splitlines()[0])["name"]
        assert "traceEvents" in json.loads(chrome.read_text())
