"""The columnar integer kernel and the BatchEvaluator exact mode.

The central claim is *bit-identity*: the batched object-dtype kernel
produces exactly the integers the sequential :class:`IntegerPool`
path does — no tolerance, no platform caveat, because integer
arithmetic has no rounding mode to pin.  On top of that sit the exact
mode's plumbing guarantees: every fixed-start result gets a
``details["exact"]`` audit, bounds go ``+inf`` (never prune an exact
quote), and weighted loops — which have no floor-arithmetic twin —
stay unannotated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amm import Pool, PoolRegistry
from repro.amm.integer import IntegerPool, execute_loop, loop_quote_out
from repro.amm.weighted import WeightedPool
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.market import (
    FEE_PPM_DENOMINATOR,
    WAD,
    BatchEvaluator,
    MarketArrays,
    base_units,
    compile_loops,
    exact_loop_quote,
    integer_batch_quotes,
    integer_hops,
    quantize_fee,
)
from repro.strategies import (
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
)

A, B, C, D = (Token(s) for s in "ABCD")


def triangle_registry(scale_shift: float = 1.0) -> tuple[PoolRegistry, list[ArbitrageLoop]]:
    registry = PoolRegistry()
    pools = [
        Pool(A, B, 100.0 * scale_shift, 200.0 * scale_shift, fee=0.003, pool_id="ab"),
        Pool(B, C, 300.0 * scale_shift, 150.0 * scale_shift, fee=0.01, pool_id="bc"),
        Pool(C, A, 80.0 * scale_shift, 120.0 * scale_shift, fee=0.0025, pool_id="ca"),
    ]
    for pool in pools:
        registry.add(pool)
    loop = ArbitrageLoop([A, B, C], pools)
    return registry, [loop]


def many_loops(count: int = 12) -> tuple[PoolRegistry, list[ArbitrageLoop]]:
    """`count` independent 3-loops with varied reserves and fees."""
    registry = PoolRegistry()
    loops = []
    for i in range(count):
        tokens = [Token(f"X{i}"), Token(f"Y{i}"), Token(f"Z{i}")]
        pools = []
        for j in range(3):
            a, b = tokens[j], tokens[(j + 1) % 3]
            pool = Pool(
                a, b,
                50.0 + 13.7 * i + j, 90.0 + 7.1 * i * (j + 1),
                fee=[0.003, 0.01, 0.0005][(i + j) % 3],
                pool_id=f"p{i}-{j}",
            )
            registry.add(pool)
            pools.append(pool)
        loops.append(ArbitrageLoop(tokens, pools))
    return registry, loops


def prices_for(loops) -> PriceMap:
    return PriceMap({
        token: 1.0 + 0.37 * k
        for k, token in enumerate(
            dict.fromkeys(t for loop in loops for t in loop.tokens)
        )
    })


class TestBatchedVsSequentialBitIdentity:
    def test_every_rotation_and_amount(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        groups, fallback = compile_loops(loops, arrays)
        assert fallback == []
        group = groups[0]
        loop = loops[0]
        for offset in range(3):
            rotation = loop.rotations()[offset]
            for amount in (0, 1, 10**12, 3 * WAD, 10**21):
                quotes = integer_batch_quotes(
                    arrays, group, offset, [amount]
                )
                sequential = loop_quote_out(integer_hops(rotation), amount)
                assert quotes.row(0) == sequential
                executed = execute_loop(integer_hops(rotation), amount)
                assert quotes.row(0) == executed

    def test_many_loops_per_row_offsets_and_amounts(self):
        registry, loops = many_loops()
        arrays = MarketArrays.from_registry(registry)
        groups, fallback = compile_loops(loops, arrays)
        assert fallback == [] and len(groups) == 1
        group = groups[0]
        offsets = np.array([k % 3 for k in range(len(group))], dtype=np.intp)
        amounts = [WAD * (k + 1) + k for k in range(len(group))]
        quotes = integer_batch_quotes(arrays, group, offsets, amounts)
        for k, loop in enumerate(group.loops):
            rotation = loop.rotations()[int(offsets[k])]
            assert quotes.row(k) == loop_quote_out(
                integer_hops(rotation), amounts[k]
            )

    def test_custom_scale(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops(loops, arrays)
        scale = 10**6
        quotes = integer_batch_quotes(arrays, groups[0], 0, [5 * scale], scale=scale)
        rotation = loops[0].rotations()[0]
        assert quotes.row(0) == loop_quote_out(
            integer_hops(rotation, scale=scale), 5 * scale
        )
        assert quotes.scale == scale

    def test_profit_and_detail(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops(loops, arrays)
        quotes = integer_batch_quotes(arrays, groups[0], 0, [2 * WAD])
        row = quotes.row(0)
        detail = quotes.detail(0)
        assert detail["amount_in"] == row[0] == 2 * WAD
        assert detail["amount_out"] == row[-1]
        assert detail["profit"] == row[-1] - row[0]
        assert detail["scale"] == WAD
        assert int(quotes.profit[0]) == detail["profit"]

    def test_input_length_mismatch_rejected(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops(loops, arrays)
        with pytest.raises(ValueError, match="one input per loop"):
            integer_batch_quotes(arrays, groups[0], 0, [1, 2])

    def test_negative_amount_rejected(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        groups, _ = compile_loops(loops, arrays)
        with pytest.raises(ValueError, match=">= 0"):
            integer_batch_quotes(arrays, groups[0], 0, [-1])


class TestBaseUnits:
    def test_truncates(self):
        assert base_units(1.5, 10) == 15
        assert base_units(1.56, 10) == 15
        assert base_units(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            base_units(-1.0)

    def test_overflow_seam(self):
        # the same degenerate-magnitude seam as pinned_pow: a value
        # whose base-unit conversion leaves the float range raises
        # instead of silently saturating
        with pytest.raises(OverflowError):
            base_units(1e300, WAD)
        # a smaller scale keeps the same value convertible
        assert base_units(1e300, 1) == int(1e300)


class TestIntegerHops:
    def test_fee_quantization_matches_arrays_column(self):
        registry, loops = triangle_registry()
        arrays = MarketArrays.from_registry(registry)
        rotation = loops[0].rotations()[0]
        for (pool_int, _), (_, _, pool) in zip(
            integer_hops(rotation), rotation.hops()
        ):
            i = arrays.pool_index[pool.pool_id]
            assert pool_int.fee_fraction == (
                int(arrays.fee_num[i]), FEE_PPM_DENOMINATOR
            )
            assert pool_int.fee_fraction[0] == quantize_fee(pool.fee)

    def test_orientation_follows_token_in(self):
        registry, loops = triangle_registry()
        rotation = loops[0].rotations()[1]  # start at B
        hops = integer_hops(rotation)
        for (pool_int, zero_for_one), (token_in, _, pool) in zip(
            hops, rotation.hops()
        ):
            assert zero_for_one == (token_in == pool.token0)


class TestEvaluatorExactMode:
    def test_annotations_match_sequential(self):
        registry, loops = many_loops()
        prices = prices_for(loops)
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry),
            min_batch=1, exact=True,
        )
        for strategy in (
            TraditionalStrategy(), MaxPriceStrategy(), MaxMaxStrategy()
        ):
            results = evaluator.evaluate_many(strategy, prices)
            for loop, result in zip(loops, results):
                exact = result.details["exact"]
                rotation = loop.rotation_from(result.start_token)
                sequential = exact_loop_quote(rotation, result.amount_in)
                assert exact == sequential

    def test_small_group_scalar_fallback_also_annotated(self):
        registry, loops = triangle_registry()
        prices = prices_for(loops)
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry),
            min_batch=64, exact=True,  # force the scalar quote path
        )
        result = evaluator.evaluate_many(MaxMaxStrategy(), prices)[0]
        assert "exact" in result.details
        assert evaluator.stats.scalar_loops == 1

    def test_exact_profit_sign_tracks_float(self):
        registry, loops = many_loops()
        prices = prices_for(loops)
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry),
            min_batch=1, exact=True,
        )
        results = evaluator.evaluate_many(MaxMaxStrategy(), prices)
        for result in results:
            exact = result.details["exact"]
            if result.amount_in and result.amount_in > 1e-9:
                # a clearly profitable float quote stays profitable in
                # base units (floor cuts < 1 unit per hop)
                float_profit_units = (
                    result.hop_amounts[-1][1] - result.amount_in
                ) * WAD
                if float_profit_units > 100:
                    assert exact["profit"] > 0

    def test_bounds_are_vacuous_in_exact_mode(self):
        registry, loops = many_loops()
        prices = prices_for(loops)
        evaluator = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry),
            min_batch=1, exact=True,
        )
        bounds = evaluator.monetized_bounds(MaxMaxStrategy(), prices)
        assert np.isposinf(bounds).all()
        # so a thresholded evaluation can never prune
        results = evaluator.evaluate_many(
            MaxMaxStrategy(), prices, threshold=1e12
        )
        assert all(result is not None for result in results)
        assert evaluator.stats.pruned_loops == 0

    def test_float_results_unchanged_by_exact_mode(self):
        registry, loops = many_loops()
        prices = prices_for(loops)
        plain = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry), min_batch=1
        )
        exact = BatchEvaluator(
            loops, arrays=MarketArrays.from_registry(registry),
            min_batch=1, exact=True,
        )
        for strategy in (TraditionalStrategy(), MaxMaxStrategy()):
            for a, b in zip(
                plain.evaluate_many(strategy, prices),
                exact.evaluate_many(strategy, prices),
            ):
                assert a.amount_in == b.amount_in
                assert a.monetized_profit == b.monetized_profit
                assert a.hop_amounts == b.hop_amounts

    def test_weighted_loops_not_annotated(self):
        registry = PoolRegistry()
        pools = [
            WeightedPool(A, B, 100.0, 200.0, 0.3, 0.7, fee=0.003, pool_id="w0"),
            Pool(B, C, 300.0, 150.0, fee=0.003, pool_id="p1"),
            Pool(C, A, 80.0, 120.0, fee=0.003, pool_id="p2"),
        ]
        for pool in pools:
            registry.add(pool)
        loop = ArbitrageLoop([A, B, C], pools)
        prices = prices_for([loop])
        evaluator = BatchEvaluator(
            [loop], arrays=MarketArrays.from_registry(registry),
            min_batch=1, exact=True,
        )
        result = evaluator.evaluate_many(MaxMaxStrategy(), prices)[0]
        assert "exact" not in result.details

    def test_exact_quote_reflects_fee_refresh(self):
        """set_fee must flow into the integer column the kernel reads."""
        registry, loops = triangle_registry()
        prices = prices_for(loops)
        arrays = MarketArrays.from_registry(registry)
        evaluator = BatchEvaluator(loops, arrays=arrays, min_batch=1, exact=True)
        before = evaluator.evaluate_many(MaxMaxStrategy(), prices)[0]
        arrays.set_fee("ab", 0.25)
        after = evaluator.evaluate_many(MaxMaxStrategy(), prices)[0]
        assert arrays.fee_num[arrays.pool_index["ab"]] == quantize_fee(0.25)
        assert before.details["exact"] != after.details["exact"]
