"""Weighted pools through the full batched pipeline — the seams that
used to force scalar fallback (or could silently drift) now have
regression coverage:

* **Replay mirror drift** — Swap/Mint/Burn events at weighted pools
  streamed through :class:`~repro.replay.ReplayDriver` incremental
  (columnar mirror + batch kernels) must report bit-identically to the
  full-recompute scalar oracle: the mirror must never apply CPMM
  arithmetic to a weighted row, and the weighted kernel must agree
  with the scalar chain optimizer exactly.
* **Service shards** — the same contract for
  :class:`~repro.service.ShardWorker`'s incremental evaluation.
* **No forced scalar path** — mixed CPMM+weighted loop sets route
  entirely through the batch kernels in the engine, replay-incremental
  mode, and shard workers (asserted via ``BatchEvaluator`` stats).
"""

from __future__ import annotations

import pytest

from repro.amm import PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import PriceMap, Token
from repro.data import MarketSnapshot
from repro.engine import EvaluationEngine
from repro.replay import ReplayDriver, generate_event_stream
from repro.service.worker import BlockWork, ShardWorker
from repro.strategies import MaxMaxStrategy, MaxPriceStrategy

V, X, Y, Z, W = (Token(s) for s in "VXYZW")


@pytest.fixture
def mixed_market():
    """Complete graph over five tokens; the Y-W and Z-W edges are
    weighted (one skewed, one 50/50), giving 20 candidate 3-loops of
    which 10 cross a weighted hop — both compiled groups are large
    enough for the kernels even at the default ``min_batch``."""
    registry = PoolRegistry()
    registry.create(X, Y, 1_000.0, 2_000.0, pool_id="m-xy")
    registry.create(Y, Z, 3_000.0, 1_500.0, pool_id="m-yz")
    registry.create(Z, X, 900.0, 1_800.0, pool_id="m-zx")
    registry.create(X, W, 5_000.0, 5_000.0, pool_id="m-xw")
    registry.create(V, X, 2_500.0, 1_250.0, pool_id="m-vx")
    registry.create(V, Y, 1_400.0, 2_800.0, pool_id="m-vy")
    registry.create(V, Z, 2_200.0, 1_100.0, pool_id="m-vz")
    registry.create(V, W, 3_300.0, 1_650.0, pool_id="m-vw")
    registry.add(WeightedPool(Y, W, 800.0, 2_400.0, 0.8, 0.2, pool_id="m-yw"))
    registry.add(WeightedPool(Z, W, 1_200.0, 700.0, 0.5, 0.5, pool_id="m-zw"))
    prices = PriceMap({V: 4.0, X: 10.0, Y: 5.0, Z: 20.0, W: 1.0})
    return MarketSnapshot(registry=registry, prices=prices, label="mixed")


@pytest.fixture
def mixed_stream(mixed_market):
    """12 blocks of swaps, mints, burns and ticks; the generator draws
    pools uniformly, so weighted pools receive all three event kinds."""
    log = generate_event_stream(
        mixed_market,
        n_blocks=12,
        events_per_block=6,
        seed=42,
        mint_fraction=0.2,
        burn_fraction=0.2,
    )
    touched = log.touched_pool_ids()
    assert {"m-yw", "m-zw"} & touched, "stream must hit weighted pools"
    return log


class TestWeightedReplayParity:
    def test_incremental_bit_identical_to_full_oracle(
        self, mixed_market, mixed_stream
    ):
        strategies = {
            "maxmax": MaxMaxStrategy(),
            "maxprice": MaxPriceStrategy(),
            "maxmax_bisect": MaxMaxStrategy(method="bisection"),
        }
        inc = ReplayDriver(mixed_market, strategies=strategies, mode="incremental")
        full = ReplayDriver(mixed_market, strategies=strategies, mode="full")
        ri = inc.replay(mixed_stream)
        rf = full.replay(mixed_stream)
        assert len(ri.reports) == len(rf.reports) == 12
        for a, b in zip(ri.reports, rf.reports):
            assert a.same_numbers(b), f"mirror drift at block {a.block}"
        # incremental did strictly less work
        assert ri.evaluations() < rf.evaluations()

    def test_weighted_loops_not_forced_scalar_in_replay(
        self, mixed_market, mixed_stream
    ):
        driver = ReplayDriver(mixed_market, mode="incremental")
        evaluator = driver._evaluator
        assert evaluator is not None
        assert evaluator.fallback_positions == []
        assert any(g.weighted for g in evaluator.groups)
        # priming covered all 8 loops in one kernel pass set
        assert evaluator.stats.scalar_loops == 0
        # small per-block dirty sets would hit the min_batch fallback by
        # design; drop the threshold to show nothing *forces* scalar
        evaluator.min_batch = 1
        driver.replay(mixed_stream)
        assert evaluator.stats.scalar_loops == 0
        assert evaluator.stats.kernel_loops > 0

    def test_columnar_mirror_stays_fresh_for_weighted_rows(
        self, mixed_market, mixed_stream
    ):
        driver = ReplayDriver(mixed_market, mode="incremental")
        driver.replay(mixed_stream)
        arrays = driver._evaluator.arrays
        for pool in driver.market.registry:
            assert arrays.reserves(pool.pool_id) == (
                pool.reserve0, pool.reserve1
            ), f"mirror drifted at {pool.pool_id}"


class TestWeightedShardWorker:
    def _worker(self, market):
        loops = EvaluationEngine().loop_universe(market.registry, 3).candidates
        return ShardWorker(0, market, loops, MaxMaxStrategy())

    def test_shard_results_match_scalar_after_weighted_events(
        self, mixed_market, mixed_stream
    ):
        worker = self._worker(mixed_market)
        for block, events in mixed_stream.iter_blocks():
            worker.process_block(BlockWork(block, tuple(events), 0.0, 0.0))
        strategy = MaxMaxStrategy()
        for loop, result in zip(worker.loops, worker._results):
            ref = strategy.evaluate_cached(loop, worker.prices, None)
            assert result.monetized_profit == ref.monetized_profit
            assert result.amount_in == ref.amount_in
            assert result.hop_amounts == ref.hop_amounts

    def test_shard_weighted_loops_not_forced_scalar(
        self, mixed_market, mixed_stream
    ):
        worker = self._worker(mixed_market)
        assert worker.evaluator_stats.scalar_loops == 0  # priming pass
        worker._evaluator.min_batch = 1
        for block, events in mixed_stream.iter_blocks():
            worker.process_block(BlockWork(block, tuple(events), 0.0, 0.0))
        assert worker.evaluator_stats.scalar_loops == 0
        assert worker.evaluator_stats.kernel_loops > 0


class TestEngineMixedBatches:
    def test_engine_routes_weighted_loops_through_kernels(self, mixed_market):
        engine = EvaluationEngine()
        universe = engine.loop_universe(mixed_market.registry, 3)
        loops = list(universe.candidates)
        assert len(loops) == 20  # 10 CPMM-only + 10 weighted-containing
        results = engine.evaluate_strategy(
            MaxMaxStrategy(), loops, mixed_market.prices
        )
        evaluators = list(engine._batch_evaluators.values())
        assert len(evaluators) == 1
        evaluator = evaluators[0]
        assert evaluator.fallback_positions == []
        assert sum(len(g) for g in evaluator.groups if g.weighted) == 10
        assert evaluator.stats.scalar_loops == 0
        for loop, got in zip(loops, results):
            ref = MaxMaxStrategy().evaluate_cached(loop, mixed_market.prices, None)
            assert got.monetized_profit == ref.monetized_profit
            assert got.amount_in == ref.amount_in
