"""Unit tests for the shared-memory market layer (:mod:`repro.market.shm`).

Covers the segment lifecycle (create / attach / close / unlink, all
idempotent), the seqlock protocol (``write_block`` epoch bracketing,
``wait_for_epoch``, ``read_consistent`` torn-read retries — driven
deterministically through the view's ``_spin_hook`` test seam), the
reserve-less :class:`PoolHandle`, and the pickle contract that lets
spawn-started shards receive segment *names* instead of markets.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.amm import PoolRegistry
from repro.amm.weighted import WeightedPool
from repro.core import Token
from repro.market import MarketArrays, SharedMarketArrays, pool_handles
from repro.market.shm import (
    _LAYOUT_VERSION,
    SEGMENT_PREFIX,
    PoolHandle,
    SegmentLayoutError,
    SharedMarketView,
)
from repro.service import SharedBlockWork

X, Y, Z = Token("X"), Token("Y"), Token("Z")


@pytest.fixture
def registry():
    registry = PoolRegistry()
    registry.create(X, Y, 1_000.0, 2_000.0, pool_id="xy")
    registry.create(Y, Z, 3_000.0, 1_500.0, pool_id="yz")
    registry.create(Z, X, 900.0, 1_800.0, pool_id="zx")
    return registry


@pytest.fixture
def shared(registry):
    arrays = SharedMarketArrays(registry)
    yield arrays
    arrays.unlink()


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_create_matches_private_columns(self, registry, shared):
        private = MarketArrays(registry)
        for column in ("reserve0", "reserve1", "fee", "weight0", "weight1"):
            np.testing.assert_array_equal(
                getattr(shared, column), getattr(private, column)
            )
        assert shared.nbytes == private.nbytes
        assert shared.segment_name.startswith(SEGMENT_PREFIX)
        assert shared.segment_nbytes > shared.nbytes  # header + alignment

    def test_view_attaches_same_columns(self, shared):
        view = shared.view()
        try:
            assert len(view) == len(shared)
            np.testing.assert_array_equal(view.reserve0, shared.reserve0)
            np.testing.assert_array_equal(view.fee, shared.fee)
            assert view.private_nbytes == 0
        finally:
            view.close()

    def test_view_sees_writes_without_copying(self, shared):
        view = shared.view()
        try:
            row = shared.pool_index["xy"]
            with shared.write_block():
                shared.reserve0[row] = 123.5
            assert view.reserve0[row] == 123.5
        finally:
            view.close()

    def test_view_columns_are_read_only(self, shared):
        view = shared.view()
        try:
            with pytest.raises((ValueError, RuntimeError)):
                view.reserve0[0] = 1.0
        finally:
            view.close()

    def test_close_and_unlink_idempotent(self, registry):
        arrays = SharedMarketArrays(registry)
        view = arrays.view()
        view.close()
        view.close()
        arrays.close()
        arrays.close()
        # columns survive a close as private copies
        assert arrays.reserve0[0] == 1_000.0
        assert view.reserve0[0] == 1_000.0
        arrays.unlink()
        arrays.unlink()
        with pytest.raises(FileNotFoundError):
            SharedMarketView(arrays.segment_name, arrays.tokens)

    def test_attach_rejects_foreign_segment(self, registry, shared):
        # a view built for the wrong token universe must fail loudly
        with pytest.raises(ValueError, match="tokens"):
            SharedMarketView(shared.segment_name, (X, Y))

    def test_attach_rejects_stale_layout_version(self, shared):
        # a segment written by a build with a different column layout
        # must raise the typed error naming both versions, not map
        # reserves at wrong offsets
        header = np.ndarray((5,), dtype=np.int64, buffer=shared._shm.buf)
        header[1] = _LAYOUT_VERSION - 1  # pretend an old build wrote it
        try:
            with pytest.raises(SegmentLayoutError) as excinfo:
                SharedMarketView(shared.segment_name, shared.tokens)
            message = str(excinfo.value)
            assert f"version {_LAYOUT_VERSION - 1}" in message
            assert f"version {_LAYOUT_VERSION}" in message
            assert "recreate" in message
            # the typed error is still a ValueError for old handlers
            assert isinstance(excinfo.value, ValueError)
        finally:
            header[1] = _LAYOUT_VERSION

    def test_attach_rejects_bad_magic(self, shared):
        header = np.ndarray((5,), dtype=np.int64, buffer=shared._shm.buf)
        original = int(header[0])
        header[0] = 0x1234
        try:
            with pytest.raises(SegmentLayoutError, match="magic"):
                SharedMarketView(shared.segment_name, shared.tokens)
        finally:
            header[0] = original

    def test_view_pickle_reattaches(self, shared):
        view = shared.view()
        try:
            blob = pickle.dumps(view)
            # the pickle carries (segment name, tokens) — never columns
            assert len(blob) < 1_000
            clone = pickle.loads(blob)
            try:
                np.testing.assert_array_equal(clone.reserve0, shared.reserve0)
                assert clone.pool_index is None  # dropped from the pickle
            finally:
                clone.close()
        finally:
            view.close()


# ----------------------------------------------------------------------
# seqlock
# ----------------------------------------------------------------------


class TestSeqlock:
    def test_write_block_epoch_bracketing(self, shared):
        assert shared.epoch == 0
        with shared.write_block():
            assert shared.epoch == 1  # odd: mid-write
        assert shared.epoch == 2  # even: committed

    def test_write_block_commits_on_error(self, shared):
        with pytest.raises(RuntimeError, match="boom"):
            with shared.write_block():
                raise RuntimeError("boom")
        assert shared.epoch % 2 == 0  # readers must never wedge

    def test_wait_for_epoch_immediate(self, shared):
        view = shared.view()
        try:
            with shared.write_block():
                pass
            assert view.wait_for_epoch(2) == 0
            assert view.epoch_waits == 0
        finally:
            view.close()

    def test_wait_for_epoch_spins_until_commit(self, shared):
        view = shared.view()
        try:
            def writer_catches_up():
                view._spin_hook = None
                with shared.write_block():
                    pass

            view._spin_hook = writer_catches_up
            assert view.wait_for_epoch(2) == 1
            assert view.epoch_waits == 1
        finally:
            view.close()

    def test_read_consistent_stable(self, shared):
        view = shared.view()
        try:
            row = shared.pool_index["xy"]
            assert view.read_consistent(lambda: float(view.reserve0[row])) == 1_000.0
            assert view.torn_retries == 0
        finally:
            view.close()

    def test_read_consistent_retries_torn_read(self, shared):
        view = shared.view()
        try:
            row = shared.pool_index["xy"]

            def concurrent_writer():
                # fires between the reader's epoch check and its pass:
                # the first pass is torn and must be discarded
                view._spin_hook = None
                with shared.write_block():
                    shared.reserve0[row] = 777.0

            view._spin_hook = concurrent_writer
            value = view.read_consistent(lambda: float(view.reserve0[row]))
            assert value == 777.0  # the retried pass, never the chimera
            assert view.torn_retries == 1
        finally:
            view.close()

    def test_read_consistent_waits_out_odd_epoch(self, shared):
        view = shared.view()
        try:
            row = shared.pool_index["xy"]
            shared._epoch[0] += 1  # writer "mid-block"
            shared.reserve0[row] = 555.0

            def writer_commits():
                view._spin_hook = None
                shared._epoch[0] += 1

            view._spin_hook = writer_commits
            value = view.read_consistent(lambda: float(view.reserve0[row]))
            assert value == 555.0
            assert view.torn_retries == 1
        finally:
            view.close()


# ----------------------------------------------------------------------
# pool handles
# ----------------------------------------------------------------------


class TestPoolHandle:
    def test_topology_only(self, registry):
        handle = PoolHandle(registry["xy"])
        assert handle.pool_id == "xy"
        assert X in handle and Y in handle and Z not in handle
        assert handle.tokens == (X, Y)
        assert handle.is_constant_product
        assert "xy" in repr(handle)

    def test_weighted_pool_keeps_family(self):
        pool = WeightedPool(X, Y, 1_000.0, 2_000.0, weight0=0.8, weight1=0.2,
                            pool_id="wp")
        assert PoolHandle(pool).is_constant_product is False

    def test_no_reserve_state(self, registry):
        # the scalar (object-reading) path must fail loudly, never
        # quote stale state
        handle = PoolHandle(registry["xy"])
        for attribute in ("reserve0", "reserve1", "fee", "weight0"):
            with pytest.raises(AttributeError):
                getattr(handle, attribute)

    def test_pool_handles_map(self, registry):
        handles = pool_handles(registry)
        assert set(handles) == {"xy", "yz", "zx"}
        assert all(isinstance(h, PoolHandle) for h in handles.values())


# ----------------------------------------------------------------------
# work items
# ----------------------------------------------------------------------


def test_shared_block_work_pickles_small():
    # SharedBlockWork carries rows and ticks, never market state — the
    # pickle must stay a few hundred bytes regardless of market size
    work = SharedBlockWork(
        block=7,
        epoch=14,
        rows=tuple(range(8)),
        ticks=((X, 1.25), (Y, 0.5)),
        t_ingest=0.0,
        t_dispatch=0.0,
        threshold=1.0,
    )
    assert len(pickle.dumps(work)) < 600
