"""Unit tests for the subgraph-style pair loader."""

from __future__ import annotations

import json

import pytest

from repro.core import SnapshotFormatError, Token
from repro.data import load_pairs, load_pairs_file


SAMPLE_PAIRS = [
    {
        "id": "0x0d4a11d5eeaac28ec3f61d100daf4d40471f1852",
        "token0": {"symbol": "WETH", "decimals": "18"},
        "token1": {"symbol": "USDT", "decimals": "6"},
        "reserve0": "31522.123",
        "reserve1": "51234567.1",
    },
    {
        "id": "0xae461ca67b15dc8dc81ce7615e0320da1a9ab8d5",
        "token0": {"symbol": "DAI", "decimals": 18},
        "token1": {"symbol": "USDC", "decimals": 6},
        "reserve0": 5_000_000.0,
        "reserve1": 5_010_000.0,
    },
    {
        "id": "0xempty",
        "token0": {"symbol": "WETH"},
        "token1": {"symbol": "DAI"},
        "reserve0": "0",
        "reserve1": "100",
    },
]

PRICES = {"WETH": 1650.0, "USDT": 1.0, "DAI": 1.0, "USDC": 1.0}


class TestLoadPairs:
    def test_basic_load(self):
        snap = load_pairs(SAMPLE_PAIRS, PRICES)
        assert len(snap.registry) == 2  # empty pair skipped
        assert snap.metadata["skipped_pairs"] == 1
        pool = snap.registry["0x0d4a11d5eeaac28ec3f61d100daf4d40471f1852"]
        assert pool.reserve_of(Token("WETH")) == pytest.approx(31522.123)
        assert pool.fee == 0.003

    def test_string_and_numeric_reserves_both_work(self):
        snap = load_pairs(SAMPLE_PAIRS, PRICES)
        dai_usdc = snap.registry["0xae461ca67b15dc8dc81ce7615e0320da1a9ab8d5"]
        assert dai_usdc.reserve_of(Token("USDC")) == pytest.approx(5_010_000.0)

    def test_decimals_preserved(self):
        snap = load_pairs(SAMPLE_PAIRS, PRICES)
        tokens = {t.symbol: t for t in snap.registry.tokens}
        assert tokens["USDT"].decimals == 6
        assert tokens["WETH"].decimals == 18

    def test_custom_fee(self):
        snap = load_pairs(SAMPLE_PAIRS[:1], PRICES, fee=0.01)
        assert next(iter(snap.registry)).fee == 0.01

    def test_malformed_record_raises(self):
        with pytest.raises(SnapshotFormatError, match="malformed pair"):
            load_pairs([{"token0": {"symbol": "A"}}], PRICES)

    def test_token_missing_symbol(self):
        bad = [{
            "id": "0x1",
            "token0": {"decimals": 18},
            "token1": {"symbol": "B"},
            "reserve0": 1,
            "reserve1": 1,
        }]
        with pytest.raises(SnapshotFormatError, match="symbol"):
            load_pairs(bad, PRICES)

    def test_self_pair_skipped(self):
        weird = [{
            "id": "0x1",
            "token0": {"symbol": "A"},
            "token1": {"symbol": "A"},
            "reserve0": 10,
            "reserve1": 10,
        }]
        snap = load_pairs(weird, {"A": 1.0})
        assert len(snap.registry) == 0
        assert snap.metadata["skipped_pairs"] == 1

    def test_pipeline_runs_on_loaded_data(self):
        """The §VI pipeline applies unchanged to loaded pairs."""
        snap = load_pairs(SAMPLE_PAIRS, PRICES)
        graph = snap.graph(apply_paper_filters=False)
        assert graph.number_of_edges() == 2


class TestLoadPairsFile:
    def test_list_file(self, tmp_path):
        path = tmp_path / "pairs.json"
        path.write_text(json.dumps(SAMPLE_PAIRS))
        snap = load_pairs_file(path, PRICES)
        assert len(snap.registry) == 2
        assert snap.label == "pairs"

    def test_wrapped_object_file(self, tmp_path):
        path = tmp_path / "dump.json"
        path.write_text(json.dumps({"pairs": SAMPLE_PAIRS}))
        snap = load_pairs_file(path, PRICES)
        assert len(snap.registry) == 2

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SnapshotFormatError, match="invalid JSON"):
            load_pairs_file(path, PRICES)

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "scalar.json"
        path.write_text("42")
        with pytest.raises(SnapshotFormatError, match="list of pairs"):
            load_pairs_file(path, PRICES)
