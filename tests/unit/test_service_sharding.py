"""Unit tests for pool partitioning and event routing."""

from __future__ import annotations

import pytest

from repro.amm.events import BlockEvent, PriceTickEvent, SwapEvent
from repro.data import SyntheticMarketGenerator
from repro.engine import EvaluationEngine
from repro.service import ShardPlan


@pytest.fixture(scope="module")
def market_and_loops():
    market = SyntheticMarketGenerator(n_tokens=10, n_pools=25, seed=5).generate()
    universe = EvaluationEngine().loop_universe(market.registry, 3)
    return market, universe.candidates


def make_plan(market, loops, n_shards):
    return ShardPlan([p.pool_id for p in market.registry], loops, n_shards)


class TestPartition:
    def test_rejects_nonpositive_shards(self, market_and_loops):
        market, loops = market_and_loops
        with pytest.raises(ValueError, match="n_shards"):
            make_plan(market, loops, 0)

    def test_pool_ownership_is_balanced(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 4)
        counts = [0, 0, 0, 0]
        for shard in plan.pool_owner.values():
            counts[shard] += 1
        assert max(counts) - min(counts) <= 1

    def test_every_loop_on_exactly_one_shard(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 3)
        assert len(plan.loop_shard) == len(loops)
        seen = [i for indices in plan.shard_loops for i in indices]
        assert sorted(seen) == list(range(len(loops)))

    def test_plan_is_deterministic(self, market_and_loops):
        market, loops = market_and_loops
        a = make_plan(market, loops, 3)
        b = make_plan(market, loops, 3)
        assert a.pool_owner == b.pool_owner
        assert a.shard_loops == b.shard_loops

    def test_single_shard_owns_everything(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 1)
        assert set(plan.pool_owner.values()) == {0}
        assert plan.loops_per_shard() == (len(loops),)


class TestRouting:
    def test_pool_events_reach_every_holding_shard(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 3)
        for index, loop in enumerate(loops):
            shard = plan.loop_shard[index]
            for pool in loop.pools:
                assert shard in plan.shards_for_pool(pool.pool_id)

    def test_ticks_reach_every_holding_shard(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 3)
        for index, loop in enumerate(loops):
            shard = plan.loop_shard[index]
            for token in loop.tokens:
                assert shard in plan.shards_for_token(token)

    def test_block_markers_route_nowhere(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 3)
        assert plan.shards_for_event(BlockEvent(block=0)) == ()

    def test_unknown_pool_routes_nowhere(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 2)
        assert plan.shards_for_pool("no-such-pool") == ()

    def test_route_block_raises_on_unknown_pool_event(self, market_and_loops):
        from repro.core.errors import UnknownPoolError

        market, loops = market_and_loops
        plan = make_plan(market, loops, 2)
        pool = loops[0].pools[0]
        bogus = SwapEvent(
            pool_id="no-such-pool", token_in=pool.token0,
            token_out=pool.token1, amount_in=1.0, amount_out=0.9, block=0,
        )
        with pytest.raises(UnknownPoolError, match="no-such-pool"):
            plan.route_block([bogus])

    def test_route_block_preserves_stream_order(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 2)
        pool = loops[0].pools[0]
        token = loops[0].tokens[0]
        events = [
            SwapEvent(
                pool_id=pool.pool_id, token_in=pool.token0,
                token_out=pool.token1, amount_in=1.0, amount_out=0.9, block=0,
            ),
            PriceTickEvent(token=token, price=2.0, block=0),
            SwapEvent(
                pool_id=pool.pool_id, token_in=pool.token1,
                token_out=pool.token0, amount_in=0.5, amount_out=0.4, block=0,
            ),
        ]
        routed = plan.route_block(events)
        shard = plan.loop_shard[0]
        mine = routed[shard]
        # this shard's sub-stream preserves relative order of its events
        positions = [events.index(e) for e in mine]
        assert positions == sorted(positions)

    def test_repr_summarizes(self, market_and_loops):
        market, loops = market_and_loops
        plan = make_plan(market, loops, 2)
        assert "2 shards" in repr(plan)
