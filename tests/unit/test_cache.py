"""PoolStateCache hit/miss accounting and reserve-keyed invalidation.

The service's cache hit-rate metric is these counters aggregated over
shard-local caches, so their semantics under interleaved reserve
updates are pinned down here: a pool mutation changes the key (old
entries are never hit again), reverting reserves re-hits the old
entry, and accounting is exact throughout.
"""

from __future__ import annotations

import pytest

from repro.engine import PoolStateCache
from repro.engine.cache import rotation_state_key
from repro.strategies import MaxMaxStrategy


@pytest.fixture
def rotation(s5_loop):
    return s5_loop.rotations()[0]


class TestAccounting:
    def test_first_quote_is_a_miss_then_hits(self, rotation):
        cache = PoolStateCache()
        cache.rotation_quote(rotation)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.rotation_quote(rotation)
        cache.rotation_quote(rotation)
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_swap_invalidates_by_key_change(self, rotation):
        cache = PoolStateCache()
        key_before = rotation_state_key(rotation, "closed_form")
        cache.rotation_quote(rotation)
        pool = rotation.pools[0]
        pool.swap(rotation.start_token, 5.0)
        assert rotation_state_key(rotation, "closed_form") != key_before
        cache.rotation_quote(rotation)
        assert (cache.hits, cache.misses) == (0, 2)

    def test_interleaved_updates_hit_exactly_when_reserves_repeat(self, rotation):
        cache = PoolStateCache()
        pool = rotation.pools[0]
        r0 = pool.reserve_of(pool.token0)
        r1 = pool.reserve_of(pool.token1)

        cache.rotation_quote(rotation)          # miss: state A
        pool.swap(rotation.start_token, 5.0)
        cache.rotation_quote(rotation)          # miss: state B
        # teleport the reserves back to state A (no public setter: the
        # point is key equality, not any particular mutation path)
        pool._reserve0, pool._reserve1 = r0, r1
        cache.rotation_quote(rotation)          # hit: state A cached
        cache.rotation_quote(rotation)          # hit again
        assert (cache.hits, cache.misses) == (2, 2)
        assert len(cache) == 2                  # both states retained

    def test_mint_and_burn_also_invalidate(self, rotation):
        cache = PoolStateCache()
        pool = rotation.pools[0]
        cache.rotation_quote(rotation)
        pool.add_liquidity(1.0, 2.0)
        cache.rotation_quote(rotation)
        pool.remove_liquidity(0.01)
        cache.rotation_quote(rotation)
        assert (cache.hits, cache.misses) == (0, 3)

    def test_distinct_methods_do_not_collide(self, rotation):
        cache = PoolStateCache()
        cache.rotation_quote(rotation, method="closed_form")
        cache.rotation_quote(rotation, method="bisection")
        assert cache.misses == 2
        cache.rotation_quote(rotation, method="closed_form")
        assert cache.hits == 1

    def test_clear_resets_counters_and_entries(self, rotation):
        cache = PoolStateCache()
        cache.rotation_quote(rotation)
        cache.rotation_quote(rotation)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_stats_snapshot(self, rotation):
        cache = PoolStateCache(maxsize=128)
        cache.rotation_quote(rotation)
        cache.rotation_quote(rotation)
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "maxsize": 128,
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
        }


class TestEvaluateCachedAccounting:
    def test_strategy_evaluation_counts_one_miss_per_rotation(self, s5_loop, s5_prices):
        cache = PoolStateCache()
        strategy = MaxMaxStrategy()
        strategy.evaluate_cached(s5_loop, s5_prices, cache)
        n = len(s5_loop)
        assert cache.misses == n and cache.hits == 0
        # unchanged reserves: a re-evaluation is all hits
        strategy.evaluate_cached(s5_loop, s5_prices, cache)
        assert cache.misses == n and cache.hits == n

    def test_price_change_is_pure_hits(self, s5_loop, s5_prices):
        from repro.core.types import Token

        cache = PoolStateCache()
        strategy = MaxMaxStrategy()
        strategy.evaluate_cached(s5_loop, s5_prices, cache)
        misses = cache.misses
        bumped = s5_prices.with_price(Token("X"), 9.0)
        strategy.evaluate_cached(s5_loop, bumped, cache)
        assert cache.misses == misses  # optimization is price-independent

    def test_reserve_change_in_one_pool_is_partial_invalidation(
        self, s5_loop, s5_prices
    ):
        cache = PoolStateCache()
        strategy = MaxMaxStrategy()
        strategy.evaluate_cached(s5_loop, s5_prices, cache)
        misses = cache.misses
        s5_loop.pools[0].swap(s5_loop.tokens[0], 1.0)
        strategy.evaluate_cached(s5_loop, s5_prices, cache)
        # every rotation crosses the mutated pool, so all keys changed
        assert cache.misses == misses + len(s5_loop)
