"""Unit tests for the four strategies on the §V example.

These tests pin the *paper's published numbers*; the reproduction's
headline correctness evidence.
"""

from __future__ import annotations

import pytest

from repro.core import StrategyError, Token
from repro.data import section5_loop, section5_prices
from repro.strategies import (
    ConvexOptimizationStrategy,
    MaxMaxStrategy,
    MaxPriceStrategy,
    TraditionalStrategy,
    available_strategies,
    make_strategy,
)

X, Y, Z = Token("X"), Token("Y"), Token("Z")


class TestTraditional:
    def test_paper_numbers_from_each_start(self, s5_loop, s5_prices):
        expected = {
            X: (27.0, 16.8, 33.7),
            Y: (31.5, 19.7, 201.1),
            Z: (16.4, 10.3, 205.6),
        }
        # The paper truncates to one decimal (16.87 -> "16.8"), so the
        # tolerance is one decimal unit.
        for token, (inp, profit, monetized) in expected.items():
            result = TraditionalStrategy(start_token=token).evaluate(s5_loop, s5_prices)
            assert result.amount_in == pytest.approx(inp, abs=0.1)
            assert result.profit.as_mapping()[token] == pytest.approx(profit, abs=0.1)
            assert result.monetized_profit == pytest.approx(monetized, abs=0.1)

    def test_default_start_is_first_token(self, s5_loop, s5_prices):
        result = TraditionalStrategy().evaluate(s5_loop, s5_prices)
        assert result.start_token == X

    def test_foreign_start_token_rejected(self, s5_loop, s5_prices):
        with pytest.raises(StrategyError, match="not in"):
            TraditionalStrategy(start_token=Token("Q")).evaluate(s5_loop, s5_prices)

    def test_no_arbitrage_gives_zero(self, no_arb_loop, simple_prices):
        result = TraditionalStrategy().evaluate(no_arb_loop, simple_prices)
        assert result.monetized_profit == 0.0
        assert result.amount_in == 0.0
        assert result.hop_amounts == ()
        assert not result.is_profitable

    def test_hop_amounts_chain(self, s5_loop, s5_prices):
        result = TraditionalStrategy(start_token=Y).evaluate(s5_loop, s5_prices)
        hops = result.hop_amounts
        assert len(hops) == 3
        for (a_in, a_out), (b_in, _b_out) in zip(hops, hops[1:]):
            assert a_out == pytest.approx(b_in)
        assert hops[-1][1] - hops[0][0] == pytest.approx(19.7, abs=0.05)

    @pytest.mark.parametrize("method", ["closed_form", "bisection", "golden"])
    def test_methods_agree(self, s5_loop, s5_prices, method):
        result = TraditionalStrategy(start_token=Z, method=method).evaluate(
            s5_loop, s5_prices
        )
        assert result.monetized_profit == pytest.approx(205.59, abs=0.05)

    def test_invalid_method(self):
        with pytest.raises(ValueError, match="method"):
            TraditionalStrategy(method="newton")

    def test_repr(self):
        assert "Z" in repr(TraditionalStrategy(start_token=Z))


class TestMaxPrice:
    def test_picks_highest_price_token(self, s5_loop, s5_prices):
        result = MaxPriceStrategy().evaluate(s5_loop, s5_prices)
        assert result.start_token == Z  # Pz = 20 is the highest
        assert result.monetized_profit == pytest.approx(205.59, abs=0.05)

    def test_not_always_optimal(self, s5_loop):
        # Paper Fig. 2: with Px ~ 15 the X rotation beats the Z rotation.
        prices = section5_prices(px=15.0)
        maxprice = MaxPriceStrategy().evaluate(s5_loop, prices)
        from_x = TraditionalStrategy(start_token=X).evaluate(s5_loop, prices)
        assert maxprice.start_token == Z
        assert from_x.monetized_profit > maxprice.monetized_profit

    def test_strategy_name(self, s5_loop, s5_prices):
        assert MaxPriceStrategy().evaluate(s5_loop, s5_prices).strategy == "maxprice"


class TestMaxMax:
    def test_paper_value(self, s5_loop, s5_prices):
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        assert result.monetized_profit == pytest.approx(205.59, abs=0.05)
        assert result.start_token == Z

    def test_dominates_each_rotation(self, s5_loop, s5_prices):
        mm = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        for token in s5_loop.tokens:
            trad = TraditionalStrategy(start_token=token).evaluate(s5_loop, s5_prices)
            assert mm.monetized_profit >= trad.monetized_profit - 1e-12

    def test_per_rotation_details(self, s5_loop, s5_prices):
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        per = result.details["per_rotation"]
        assert set(per) == {"X", "Y", "Z"}
        assert per["Z"] == pytest.approx(205.59, abs=0.05)
        assert per["X"] == pytest.approx(33.74, abs=0.05)

    def test_no_arbitrage_zero(self, no_arb_loop, simple_prices):
        result = MaxMaxStrategy().evaluate(no_arb_loop, simple_prices)
        assert result.monetized_profit == 0.0


class TestConvexOptimization:
    @pytest.mark.parametrize("backend", ["barrier", "slsqp"])
    def test_paper_value(self, s5_loop, s5_prices, backend):
        result = ConvexOptimizationStrategy(backend=backend).evaluate(
            s5_loop, s5_prices
        )
        assert result.monetized_profit == pytest.approx(206.1, abs=0.1)
        net = {t.symbol: a for t, a in result.profit.as_mapping().items()}
        # paper: "The profit includes 5 token Y and 7.7 token Z."
        assert net.get("Y", 0.0) == pytest.approx(5.0, abs=0.05)
        assert net.get("Z", 0.0) == pytest.approx(7.76, abs=0.05)
        assert net.get("X", 0.0) == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("backend", ["barrier", "slsqp"])
    def test_dominates_maxmax(self, s5_loop, s5_prices, backend):
        convex = ConvexOptimizationStrategy(backend=backend).evaluate(
            s5_loop, s5_prices
        )
        maxmax = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        assert convex.monetized_profit >= maxmax.monetized_profit - 1e-9

    def test_paper_plan_amounts(self, s5_loop, s5_prices):
        # paper: input 31.3 X -> 47.6 Y; 42.6 Y -> 24.8 Z; 17.1 Z -> 31.3 X
        result = ConvexOptimizationStrategy(backend="slsqp").evaluate(
            s5_loop, s5_prices
        )
        hops = result.hop_amounts
        assert hops[0][0] == pytest.approx(31.3, abs=0.1)
        assert hops[0][1] == pytest.approx(47.6, abs=0.1)
        assert hops[1][0] == pytest.approx(42.6, abs=0.1)
        assert hops[1][1] == pytest.approx(24.8, abs=0.1)
        assert hops[2][0] == pytest.approx(17.1, abs=0.1)
        assert hops[2][1] == pytest.approx(31.3, abs=0.1)

    def test_zero_solution_theorem(self, no_arb_loop, simple_prices):
        """No arbitrage by traditional strategies => convex finds none."""
        for backend in ("barrier", "slsqp"):
            result = ConvexOptimizationStrategy(backend=backend).evaluate(
                no_arb_loop, simple_prices
            )
            assert result.monetized_profit == pytest.approx(0.0, abs=1e-9)

    def test_equality_linking_matches_maxmax_start(self, s5_loop, s5_prices):
        result = ConvexOptimizationStrategy(linking="equality").evaluate(
            s5_loop, s5_prices
        )
        # eq. (7) fixes the start to loop order (X); its optimum is the
        # X rotation's profit at best -- the floor lifts it to MaxMax.
        maxmax = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        assert result.monetized_profit == pytest.approx(
            maxmax.monetized_profit, rel=1e-6
        )

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ConvexOptimizationStrategy(backend="cvxpy")

    def test_details_record_backend(self, s5_loop, s5_prices):
        result = ConvexOptimizationStrategy(backend="slsqp").evaluate(
            s5_loop, s5_prices
        )
        assert result.details["backend"] == "slsqp"
        assert result.start_token is None


class TestRegistry:
    def test_available(self):
        assert available_strategies() == ("convex", "maxmax", "maxprice", "traditional")

    def test_make_strategy(self):
        assert isinstance(make_strategy("maxmax"), MaxMaxStrategy)
        strategy = make_strategy("convex", backend="slsqp")
        assert isinstance(strategy, ConvexOptimizationStrategy)
        assert strategy.backend == "slsqp"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("gradient-descent")

    def test_evaluate_many(self, s5_prices):
        loops = [section5_loop(), section5_loop()]
        results = MaxMaxStrategy().evaluate_many(loops, s5_prices)
        assert len(results) == 2
        assert results[0].monetized_profit == pytest.approx(
            results[1].monetized_profit
        )


class TestStrategyResult:
    def test_str(self, s5_loop, s5_prices):
        result = MaxMaxStrategy().evaluate(s5_loop, s5_prices)
        text = str(result)
        assert "maxmax" in text and "$" in text
