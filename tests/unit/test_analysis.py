"""Unit tests for sweeps, statistics, reports, and timing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    Timer,
    best_of,
    format_table,
    paper_px_grid,
    price_sweep,
    render_runtime,
    render_scatter,
    render_sweep,
    scatter_stats,
    scatter_to_csv,
    sparkline,
    sweep_to_csv,
)
from repro.analysis.experiments import RuntimeResult, ScatterResult
from repro.core import Token
from repro.strategies import MaxMaxStrategy, TraditionalStrategy


class TestScatterStats:
    def test_identical_clouds(self):
        stats = scatter_stats([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.frac_below_or_on == 1.0
        assert stats.frac_strictly_below == 0.0
        assert stats.max_rel_gap == 0.0
        assert stats.pearson_r == pytest.approx(1.0)

    def test_dominated_cloud(self):
        stats = scatter_stats([10.0, 20.0], [5.0, 20.0])
        assert stats.frac_below_or_on == 1.0
        assert stats.frac_strictly_below == 0.5
        assert stats.max_rel_gap == pytest.approx(0.5)
        assert stats.mean_rel_gap == pytest.approx(0.25)

    def test_excess_detected(self):
        stats = scatter_stats([10.0], [11.0])
        assert stats.frac_below_or_on == 0.0
        assert stats.max_rel_excess == pytest.approx(0.1)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            scatter_stats([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="at least one"):
            scatter_stats([], [])

    def test_constant_series_correlation(self):
        stats = scatter_stats([1.0, 1.0], [1.0, 1.0])
        assert stats.pearson_r == 1.0
        stats = scatter_stats([1.0, 1.0], [1.0, 2.0])
        assert stats.pearson_r == 0.0


class TestSweep:
    def test_paper_grid(self):
        grid = paper_px_grid()
        assert grid.size == 101
        assert grid[1] == pytest.approx(0.2)
        assert grid[-1] == pytest.approx(20.0)
        assert grid[0] > 0  # nudged off zero

    def test_price_sweep(self, s5_loop, s5_prices):
        grid = [1.0, 2.0, 15.0]
        series = price_sweep(
            s5_loop,
            s5_prices,
            Token("X"),
            grid,
            {"maxmax": MaxMaxStrategy(), "from_x": TraditionalStrategy(start_token=Token("X"))},
        )
        assert series.prices().tolist() == grid
        assert set(series.strategies()) == {"maxmax", "from_x"}
        mm = series.series("maxmax")
        fx = series.series("from_x")
        assert np.all(mm >= fx - 1e-9)  # envelope property per point
        # higher Px strictly raises the X-start profit
        assert fx[2] > fx[0]


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_scatter(self):
        result = ScatterResult(
            x_label="a",
            y_label="b",
            x=np.array([1.0, 2.0]),
            y=np.array([1.0, 1.5]),
            loop_ids=("l0", "l1"),
            point_labels=("p0", "p1"),
            stats=scatter_stats([1.0, 2.0], [1.0, 1.5]),
        )
        text = render_scatter(result, title="demo")
        assert "demo" in text
        assert "points" in text
        assert "l1" in text

    def test_scatter_csv(self, tmp_path):
        result = ScatterResult(
            x_label="a",
            y_label="b",
            x=np.array([1.0]),
            y=np.array([2.0]),
            loop_ids=("l0",),
            point_labels=("p0",),
            stats=scatter_stats([1.0], [2.0]),
        )
        path = tmp_path / "scatter.csv"
        text = scatter_to_csv(result, path)
        assert path.read_text() == text
        assert text.splitlines()[0] == "loop_id,label,a,b"
        assert "l0,p0,1.0,2.0" in text

    def test_render_and_csv_sweep(self, s5_loop, s5_prices, tmp_path):
        series = price_sweep(
            s5_loop, s5_prices, Token("X"), [1.0, 2.0], {"maxmax": MaxMaxStrategy()}
        )
        text = render_sweep(series, title="sweep")
        assert "sweep" in text and "maxmax" in text
        csv_text = sweep_to_csv(series, tmp_path / "sweep.csv")
        assert csv_text.splitlines()[0] == "price_X,maxmax"
        assert len(csv_text.splitlines()) == 3

    def test_render_runtime(self):
        result = RuntimeResult(
            lengths=(3, 10),
            maxmax_seconds=(0.001, 0.002),
            convex_seconds=(0.01, 0.4),
            repeats=3,
        )
        text = render_runtime(result)
        assert "loop length" in text
        assert "10" in text
        assert result.speedup()[0] == pytest.approx(10.0)


class TestTiming:
    def test_best_of_returns_positive(self):
        assert best_of(lambda: sum(range(100)), repeats=2) > 0

    def test_best_of_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            best_of(lambda: None, repeats=0)

    def test_timer(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0
