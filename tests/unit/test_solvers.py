"""Unit tests for the barrier and SLSQP solvers on known programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InfeasibleProgramError
from repro.optimize import (
    AffineConstraint,
    BarrierSolver,
    ConvexProgram,
    HopConstraint,
    LinearEquality,
    solve_barrier,
    solve_slsqp,
)


def box_program():
    """maximize v0 + 2*v1  s.t.  v <= (3, 4), v >= 0  -> optimum (3, 4)."""
    return ConvexProgram(
        n_vars=2,
        objective=np.array([1.0, 2.0]),
        inequalities=[
            AffineConstraint(coeffs=np.array([-1.0, 0.0]), offset=3.0),
            AffineConstraint(coeffs=np.array([0.0, -1.0]), offset=4.0),
        ],
    )


def simplex_program():
    """maximize 2*v0 + v1  s.t.  v0 + v1 <= 1, v >= 0  -> optimum (1, 0)."""
    return ConvexProgram(
        n_vars=2,
        objective=np.array([2.0, 1.0]),
        inequalities=[AffineConstraint(coeffs=np.array([-1.0, -1.0]), offset=1.0)],
    )


def single_hop_program():
    """maximize out - in over one CPMM hop: the 1-pool 'round trip'.

    With x=100, y=300, gamma=0.997 the 'loop' X->Y has rate 2.991 > 1 at
    zero, optimum at t* = (sqrt(a*b)-b)/c with a=299.1, b=100, c=0.997.
    """
    return ConvexProgram(
        n_vars=2,
        objective=np.array([-1.0, 1.0]),
        inequalities=[
            HopConstraint(x=100.0, y=300.0, gamma=0.997, idx_in=0, idx_out=1, n_vars=2)
        ],
    )


def single_hop_optimum():
    a, b, c = 300.0 * 0.997, 100.0, 0.997
    t = (np.sqrt(a * b) - b) / c
    out = a * t / (b + c * t)
    return t, out


class TestBarrier:
    def test_box(self):
        result = solve_barrier(box_program(), np.array([1.0, 1.0]))
        assert result.converged
        assert np.allclose(result.x, [3.0, 4.0], atol=1e-6)
        assert result.objective == pytest.approx(11.0, abs=1e-5)
        assert result.backend == "barrier"

    def test_simplex(self):
        result = solve_barrier(simplex_program(), np.array([0.2, 0.2]))
        assert np.allclose(result.x, [1.0, 0.0], atol=1e-5)

    def test_hop_program(self):
        t_star, out_star = single_hop_optimum()
        result = solve_barrier(single_hop_program(), np.array([1.0, 1.0]))
        assert result.x[0] == pytest.approx(t_star, rel=1e-6)
        assert result.x[1] == pytest.approx(out_star, rel=1e-6)

    def test_rejects_infeasible_start(self):
        with pytest.raises(InfeasibleProgramError, match="strictly feasible"):
            solve_barrier(box_program(), np.array([10.0, 1.0]))

    def test_rejects_boundary_start(self):
        with pytest.raises(InfeasibleProgramError):
            solve_barrier(box_program(), np.array([3.0, 1.0]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            solve_barrier(box_program(), np.array([1.0, 1.0, 1.0]))

    def test_unconstrained_rejected(self):
        program = ConvexProgram(
            n_vars=1, objective=np.array([1.0]), inequalities=[], nonneg=False
        )
        with pytest.raises(InfeasibleProgramError, match="unbounded"):
            solve_barrier(program, np.array([0.5]))

    def test_equality_constrained(self):
        # maximize v0 + v1 s.t. v0 = v1, v0 + v1 <= 1 -> (0.5, 0.5)
        program = ConvexProgram(
            n_vars=2,
            objective=np.array([1.0, 1.0]),
            inequalities=[AffineConstraint(coeffs=np.array([-1.0, -1.0]), offset=1.0)],
            equalities=[LinearEquality(coeffs=np.array([1.0, -1.0]), rhs=0.0)],
        )
        result = solve_barrier(program, np.array([0.2, 0.2]))
        assert np.allclose(result.x, [0.5, 0.5], atol=1e-5)

    def test_equality_start_violation_rejected(self):
        program = ConvexProgram(
            n_vars=2,
            objective=np.array([1.0, 1.0]),
            inequalities=[AffineConstraint(coeffs=np.array([-1.0, -1.0]), offset=1.0)],
            equalities=[LinearEquality(coeffs=np.array([1.0, -1.0]), rhs=0.0)],
        )
        with pytest.raises(InfeasibleProgramError, match="equality"):
            solve_barrier(program, np.array([0.3, 0.1]))

    def test_mu_validation(self):
        with pytest.raises(ValueError, match="mu"):
            BarrierSolver(mu=1.0)

    def test_tight_tolerance_more_outer_iterations(self):
        loose = BarrierSolver(tol=1e-3).solve(box_program(), np.array([1.0, 1.0]))
        tight = BarrierSolver(tol=1e-12).solve(box_program(), np.array([1.0, 1.0]))
        assert tight.iterations > loose.iterations


class TestSlsqp:
    def test_box(self):
        result = solve_slsqp(box_program())
        assert result.converged
        assert np.allclose(result.x, [3.0, 4.0], atol=1e-6)
        assert result.backend == "slsqp"

    def test_simplex(self):
        result = solve_slsqp(simplex_program())
        assert np.allclose(result.x, [1.0, 0.0], atol=1e-6)

    def test_hop_program(self):
        t_star, out_star = single_hop_optimum()
        result = solve_slsqp(single_hop_program(), initial_point=np.array([50.0, 50.0]))
        assert result.x[0] == pytest.approx(t_star, rel=1e-5)
        assert result.x[1] == pytest.approx(out_star, rel=1e-5)

    def test_equality_constraint(self):
        program = ConvexProgram(
            n_vars=2,
            objective=np.array([1.0, 1.0]),
            inequalities=[AffineConstraint(coeffs=np.array([-1.0, -1.0]), offset=1.0)],
            equalities=[LinearEquality(coeffs=np.array([1.0, -1.0]), rhs=0.0)],
        )
        result = solve_slsqp(program)
        assert np.allclose(result.x, [0.5, 0.5], atol=1e-6)

    def test_wrong_shape_start(self):
        with pytest.raises(ValueError, match="shape"):
            solve_slsqp(box_program(), initial_point=np.zeros(5))

    def test_result_clipped_nonnegative(self):
        result = solve_slsqp(simplex_program())
        assert np.all(result.x >= 0)


class TestBackendsAgree:
    @pytest.mark.parametrize("program_factory", [box_program, simplex_program, single_hop_program])
    def test_same_objective(self, program_factory):
        program = program_factory()
        b = solve_barrier(program, np.array([0.1, 0.1]))
        s = solve_slsqp(program, initial_point=np.array([0.1, 0.1]))
        assert b.objective == pytest.approx(s.objective, rel=1e-5, abs=1e-8)
