"""Unit tests for the CEX oracle layer."""

from __future__ import annotations

import pytest

from repro.cex import (
    REFERENCE_PRICES_2023_09,
    RandomWalkOracle,
    StaticPriceOracle,
    lognormal_prices,
)
from repro.core import MissingPriceError, PriceMap, Token


class TestStaticOracle:
    def test_snapshot_roundtrip(self):
        oracle = StaticPriceOracle({"X": 2.0, "Y": 3.0})
        snap = oracle.snapshot()
        assert snap[Token("X")] == 2.0
        assert oracle.price(Token("Y")) == 3.0

    def test_accepts_pricemap(self):
        prices = PriceMap.from_symbols({"X": 2.0})
        assert StaticPriceOracle(prices).snapshot() is prices

    def test_reference_table(self):
        oracle = StaticPriceOracle.reference_2023_09()
        snap = oracle.snapshot()
        assert snap[Token("WETH")] == REFERENCE_PRICES_2023_09["WETH"]
        assert snap[Token("USDC")] == 1.0
        # five orders of magnitude of spread exercises MaxPrice
        assert max(snap.values()) / min(snap.values()) > 1e5

    def test_with_price(self):
        oracle = StaticPriceOracle({"X": 2.0})
        bumped = oracle.with_price(Token("X"), 5.0)
        assert bumped.price(Token("X")) == 5.0
        assert oracle.price(Token("X")) == 2.0

    def test_quotes_subset(self):
        oracle = StaticPriceOracle({"X": 2.0, "Y": 3.0})
        quotes = oracle.quotes([Token("Y")])
        assert quotes == {Token("Y"): 3.0}

    def test_quotes_missing_token(self):
        oracle = StaticPriceOracle({"X": 2.0})
        with pytest.raises(MissingPriceError):
            oracle.quotes([Token("Q")])


class TestLognormalPrices:
    def test_deterministic_per_seed(self):
        tokens = [Token(f"T{i}") for i in range(10)]
        assert dict(lognormal_prices(tokens, seed=1)) == dict(
            lognormal_prices(tokens, seed=1)
        )

    def test_different_seeds_differ(self):
        tokens = [Token(f"T{i}") for i in range(10)]
        a = lognormal_prices(tokens, seed=1)
        b = lognormal_prices(tokens, seed=2)
        assert dict(a) != dict(b)

    def test_all_positive(self):
        tokens = [Token(f"T{i}") for i in range(50)]
        assert all(p > 0 for p in lognormal_prices(tokens, seed=3).values())

    def test_sigma_zero_gives_median(self):
        tokens = [Token("T0")]
        prices = lognormal_prices(tokens, seed=1, median_price=7.0, sigma=0.0)
        assert prices[Token("T0")] == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="median_price"):
            lognormal_prices([Token("T")], seed=1, median_price=0.0)
        with pytest.raises(ValueError, match="sigma"):
            lognormal_prices([Token("T")], seed=1, sigma=-1.0)


class TestRandomWalkOracle:
    def make(self, volatility=0.01):
        initial = PriceMap.from_symbols({"X": 100.0, "Y": 1.0})
        return RandomWalkOracle(initial, seed=42, volatility=volatility)

    def test_initial_snapshot(self):
        oracle = self.make()
        assert oracle.snapshot()[Token("X")] == 100.0
        assert oracle.steps == 0

    def test_step_changes_prices(self):
        oracle = self.make()
        before = dict(oracle.snapshot())
        after = dict(oracle.step())
        assert before != after
        assert oracle.steps == 1

    def test_zero_volatility_zero_drift_is_constant(self):
        oracle = self.make(volatility=0.0)
        after = oracle.step()
        assert after[Token("X")] == pytest.approx(100.0)

    def test_drift(self):
        initial = PriceMap.from_symbols({"X": 100.0})
        oracle = RandomWalkOracle(initial, seed=1, volatility=0.0, drift=0.1)
        oracle.run(10)
        import math

        assert oracle.snapshot()[Token("X")] == pytest.approx(100.0 * math.e, rel=1e-9)

    def test_deterministic_per_seed(self):
        a, b = self.make(), self.make()
        for _ in range(5):
            a.step()
            b.step()
        assert dict(a.snapshot()) == dict(b.snapshot())

    def test_run_returns_snapshots(self):
        oracle = self.make()
        snaps = oracle.run(3)
        assert len(snaps) == 3
        assert oracle.steps == 3

    def test_run_validation(self):
        with pytest.raises(ValueError, match="n_steps"):
            self.make().run(-1)

    def test_volatility_validation(self):
        with pytest.raises(ValueError, match="volatility"):
            RandomWalkOracle(PriceMap.from_symbols({"X": 1.0}), seed=1, volatility=-0.1)

    def test_prices_stay_positive(self):
        oracle = self.make(volatility=0.5)
        oracle.run(100)
        assert all(p > 0 for p in oracle.snapshot().values())
