"""Unit tests for the live top-K opportunity book."""

from __future__ import annotations

import pytest

from repro.service import (
    Opportunity,
    OpportunityBook,
    opportunity_sort_key,
    rank_opportunities,
)


def make_entry(loop_id: str, profit: float, block: int = 0, shard: int = 0):
    return Opportunity(
        loop_id=loop_id,
        path=loop_id.replace("|", " -> "),
        profit_usd=profit,
        amount_in=1.0,
        start_symbol="X",
        block=block,
        shard=shard,
    )


class TestSortKey:
    def test_profit_descends_first(self):
        assert opportunity_sort_key(5.0, "zzz") < opportunity_sort_key(4.0, "aaa")

    def test_ties_break_by_canonical_id_ascending(self):
        a = opportunity_sort_key(5.0, "aaa")
        b = opportunity_sort_key(5.0, "bbb")
        assert a < b

    def test_rank_opportunities_is_total_and_deterministic(self):
        entries = [
            make_entry("b", 2.0),
            make_entry("a", 2.0),
            make_entry("c", 3.0),
            make_entry("d", -1.0),
        ]
        ranked = rank_opportunities(entries)
        assert [e.loop_id for e in ranked] == ["c", "a", "b", "d"]
        assert [e.loop_id for e in rank_opportunities(entries, k=2)] == ["c", "a"]


class TestBook:
    def test_apply_upserts_and_bumps_seq(self):
        book = OpportunityBook()
        assert book.seq == 0
        delta = book.apply(0, 0, [make_entry("a", 1.0), make_entry("b", 2.0)])
        assert book.seq == 1 and delta.seq == 1
        assert len(book) == 2
        delta = book.apply(1, 0, [make_entry("a", 5.0)])
        assert book.seq == 2
        assert {e.loop_id for e in delta.changed} == {"a"}
        assert book.get("a").profit_usd == 5.0

    def test_unchanged_profit_is_not_republished(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 1.0)])
        seq = book.seq
        delta = book.apply(1, 0, [make_entry("a", 1.0, block=1)])
        assert delta.changed == ()
        # no content change: seq holds, so "my last delta seq ==
        # book.seq" remains a sound currency check for subscribers
        assert delta.seq == seq and book.seq == seq
        # but the entry metadata still advanced
        assert book.get("a").block == 1

    def test_top_orders_and_filters_unprofitable(self):
        book = OpportunityBook()
        book.apply(0, 0, [
            make_entry("a", 1.0), make_entry("b", 3.0),
            make_entry("c", 0.0), make_entry("d", -2.0),
            make_entry("e", 3.0),
        ])
        top = book.top(10)
        assert [e.loop_id for e in top] == ["b", "e", "a"]
        assert [e.loop_id for e in book.top(2)] == ["b", "e"]
        assert book.top(0) == []

    def test_top_survives_stale_heap_entries(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 10.0), make_entry("b", 1.0)])
        book.apply(1, 0, [make_entry("a", 0.5)])  # demote the leader
        assert [e.loop_id for e in book.top(5)] == ["b", "a"]
        # repeated reads are stable (lazy deletion pushes live keys back)
        assert [e.loop_id for e in book.top(5)] == ["b", "a"]
        book.apply(2, 0, [make_entry("a", 99.0)])
        assert [e.loop_id for e in book.top(1)] == ["a"]

    def test_profit_cycling_back_does_not_duplicate_top_entries(self):
        # 5 -> 3 -> 5 leaves two live heap tuples with identical keys;
        # top() must return the loop once, not twice
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 5.0), make_entry("b", 4.0)])
        book.apply(1, 0, [make_entry("a", 3.0)])
        book.apply(2, 0, [make_entry("a", 5.0)])
        assert [e.loop_id for e in book.top(10)] == ["a", "b"]
        assert [e.loop_id for e in book.top(10)] == ["a", "b"]  # stable

    def test_heap_stays_bounded_under_churn(self):
        # compaction fires once stale tuples outnumber live entries
        # ~2:1, so heavy churn on a small book keeps the heap O(live)
        book = OpportunityBook()
        for i in range(2000):
            book.apply(i, 0, [make_entry("a", float(i + 1))])
        assert len(book._heap) <= 3 * max(16, len(book._entries))
        assert book.top(1)[0].profit_usd == 2000.0

    def test_heap_stays_bounded_under_churn_many_loops(self):
        book = OpportunityBook()
        loop_ids = [f"loop-{i}" for i in range(50)]
        for round_ in range(100):
            book.apply(
                round_, 0,
                [make_entry(lid, float((round_ + i) % 37) + 0.5)
                 for i, lid in enumerate(loop_ids)],
            )
        assert len(book._heap) <= 3 * max(16, len(book._entries))
        # reads still correct after compactions
        top = book.top(5)
        assert len(top) == 5
        assert all(a.profit_usd >= b.profit_usd for a, b in zip(top, top[1:]))

    def test_kth_profit_basics(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 5.0), make_entry("b", 3.0),
                          make_entry("c", 1.0), make_entry("d", -2.0)])
        assert book.kth_profit(1) == 5.0
        assert book.kth_profit(2) == 3.0
        assert book.kth_profit(3) == 1.0
        # fewer than k profitable entries -> no threshold (0.0)
        assert book.kth_profit(4) == 0.0
        assert book.kth_profit(0) == 0.0
        # reads are non-destructive
        assert book.kth_profit(2) == 3.0
        assert [e.loop_id for e in book.top(3)] == ["a", "b", "c"]

    def test_kth_profit_excludes_in_flight_loops(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 5.0), make_entry("b", 3.0),
                          make_entry("c", 1.0)])
        # excluding the leader shifts every rank down
        assert book.kth_profit(1, exclude={"a"}) == 3.0
        assert book.kth_profit(2, exclude={"a"}) == 1.0
        # excluded entries also don't count toward "k found"
        assert book.kth_profit(3, exclude={"a"}) == 0.0
        assert book.kth_profit(1, exclude={"a", "b", "c"}) == 0.0

    def test_kth_profit_skips_stale_and_duplicate_tuples(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 5.0), make_entry("b", 4.0)])
        book.apply(1, 0, [make_entry("a", 2.0)])   # stale 5.0 tuple
        book.apply(2, 0, [make_entry("b", 4.0)])   # no-op: same value
        book.apply(3, 0, [make_entry("b", 1.0)])
        book.apply(4, 0, [make_entry("b", 4.0)])   # duplicate live key
        assert book.kth_profit(1) == 4.0
        assert book.kth_profit(2) == 2.0
        assert book.kth_profit(3) == 0.0

    def test_snapshot_is_sequenced_and_sorted(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("b", 1.0), make_entry("a", 2.0),
                          make_entry("x", -1.0)])
        snap = book.snapshot()
        assert snap.seq == book.seq
        assert [e.loop_id for e in snap.entries] == ["a", "b"]
        assert snap.top(1)[0].loop_id == "a"


class TestSubscriptions:
    async def test_subscriber_receives_sequenced_deltas(self):
        book = OpportunityBook()
        sub = book.subscribe()
        book.apply(0, 0, [make_entry("a", 1.0)])
        book.apply(1, 0, [make_entry("b", 2.0)])
        first = await sub.next_delta()
        second = await sub.next_delta()
        assert (first.seq, second.seq) == (1, 2)
        assert first.changed[0].loop_id == "a"
        book.close()
        assert await sub.next_delta() is None

    async def test_slow_subscriber_gaps_and_resyncs(self):
        book = OpportunityBook()
        sub = book.subscribe(maxsize=1)
        book.apply(0, 0, [make_entry("a", 1.0)])
        book.apply(1, 0, [make_entry("b", 2.0)])  # queue full -> dropped
        assert sub.dropped == 1 and sub.gapped
        snap = sub.resync()
        assert not sub.gapped
        assert snap.seq == book.seq
        assert {e.loop_id for e in snap.entries} == {"a", "b"}

    async def test_unsubscribe_stops_delivery_and_wakes_reader(self):
        book = OpportunityBook()
        sub = book.subscribe()
        sub.close()
        # closing wakes any blocked next_delta() with the end sentinel
        assert await sub.next_delta() is None
        book.apply(0, 0, [make_entry("a", 1.0)])
        assert sub.queue.empty()

    async def test_close_unblocks_pending_reader(self):
        import asyncio

        book = OpportunityBook()
        sub = book.subscribe()
        reader = asyncio.ensure_future(sub.next_delta())
        await asyncio.sleep(0)  # reader is now parked on the empty queue
        sub.close()
        assert await asyncio.wait_for(reader, timeout=1.0) is None

    async def test_stale_sentinel_does_not_end_a_reopened_stream(self):
        book = OpportunityBook()
        sub = book.subscribe()
        book.apply(0, 0, [make_entry("a", 1.0)])
        book.close()  # queues a None sentinel behind the first delta
        book.reopen()
        book.apply(1, 0, [make_entry("b", 2.0)])
        first = await sub.next_delta()
        second = await sub.next_delta()  # must skip the stale sentinel
        assert first.changed[0].loop_id == "a"
        assert second is not None and second.changed[0].loop_id == "b"
        book.close()
        assert await sub.next_delta() is None

    def test_zero_profit_entries_never_rank(self):
        book = OpportunityBook()
        book.apply(0, 0, [make_entry("a", 0.0)])
        assert book.top(5) == []
        assert book.snapshot().entries == ()


def test_opportunity_to_dict_round_trips_fields():
    entry = make_entry("a|b", 1.5, block=7, shard=2)
    data = entry.to_dict()
    assert data["loop_id"] == "a|b"
    assert data["profit_usd"] == 1.5
    assert data["block"] == 7 and data["shard"] == 2


def test_book_top_rejects_nothing_on_empty():
    book = OpportunityBook()
    assert book.top(3) == []
    assert len(book) == 0
    with pytest.raises(AttributeError):
        book.entries  # internal dict is private
