"""Shared fixtures (the §V example, small markets, strategies) and the
asyncio test runner.

The service tests are ``async def`` functions.  The image has no
pytest-asyncio, so a minimal equivalent lives here: coroutine test
functions are auto-marked ``asyncio`` (the marker is registered in
pyproject) and executed on a fresh event loop via :func:`asyncio.run`.
If pytest-asyncio is installed it takes precedence untouched — the
hook below bows out.
"""

from __future__ import annotations

import asyncio
import inspect

import pytest

try:  # defer to the real plugin when the environment has it
    import pytest_asyncio  # noqa: F401

    _HAVE_PYTEST_ASYNCIO = True
except ImportError:
    _HAVE_PYTEST_ASYNCIO = False


def pytest_collection_modifyitems(items):
    for item in items:
        if isinstance(item, pytest.Function) and inspect.iscoroutinefunction(
            item.function
        ):
            item.add_marker(pytest.mark.asyncio)


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    if _HAVE_PYTEST_ASYNCIO:
        return None
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    asyncio.run(func(**kwargs))
    return True

from repro.amm import Pool, PoolRegistry
from repro.core import ArbitrageLoop, PriceMap, Token
from repro.data import paper_market, section5_loop, section5_prices, section5_snapshot


@pytest.fixture
def tokens_xyz():
    return Token("X"), Token("Y"), Token("Z")


@pytest.fixture
def s5_loop():
    """Fresh §V loop (pools are mutable; never share across tests)."""
    return section5_loop()


@pytest.fixture
def s5_prices():
    return section5_prices()


@pytest.fixture
def s5_snapshot():
    return section5_snapshot()


@pytest.fixture
def no_arb_loop(tokens_xyz):
    """A 3-loop with *no* arbitrage: pools agree on consistent prices.

    Relative prices are 2, 1/2, 1 around the loop; with fees the
    round-trip rate is (1-fee)^3 < 1.
    """
    x, y, z = tokens_xyz
    pools = [
        Pool(x, y, 100.0, 200.0, pool_id="na-xy"),
        Pool(y, z, 200.0, 100.0, pool_id="na-yz"),
        Pool(z, x, 100.0, 100.0, pool_id="na-zx"),
    ]
    return ArbitrageLoop([x, y, z], pools)


@pytest.fixture
def small_registry(tokens_xyz):
    x, y, z = tokens_xyz
    registry = PoolRegistry()
    registry.create(x, y, 100.0, 200.0, pool_id="r-xy")
    registry.create(y, z, 300.0, 200.0, pool_id="r-yz")
    registry.create(z, x, 200.0, 400.0, pool_id="r-zx")
    return registry


@pytest.fixture(scope="session")
def default_market():
    """The default §VI-scale market (expensive; share per session,
    treat as read-only — tests that mutate pools must copy())."""
    return paper_market()


@pytest.fixture
def simple_prices(tokens_xyz):
    x, y, z = tokens_xyz
    return PriceMap({x: 2.0, y: 10.2, z: 20.0})
